(* In-run telemetry: cadence-scheduled snapshots of integer sources into
   preallocated struct-of-arrays rings (DESIGN.md section 15).

   A channel names one integer source — a counter cell, a sum over cells,
   or an arbitrary int thunk — plus a mode: [Cumulative] stores the delta
   since the previous tick (so dividing by the interval yields a rate),
   [Level] stores the instantaneous value (queue depths, cache occupancy).

   The tick path is allocation-free by construction: channels live in an
   array fixed at [freeze] time, each holds its resolved source and a flat
   float ring (unboxed stores), and reading a source is an int load (or an
   int-returning thunk, which the caller guarantees does not allocate).
   Rings are power-of-two sized and overwrite oldest-first, like {!Trace}.

   Ticks are driven either by {!attach} — a read-only [Sim.schedule_aux]
   chain, which draws negative sequence numbers so the run stays
   bit-identical to one without telemetry — or externally (the barrier
   pulses of [Par.drive] in partitioned runs, the bench harness in
   pps_bench).  Both stamp windows at [k *. interval] by multiplication,
   which is what makes K=1 and K>1 series identical. *)

type source =
  | Cell of Counters.t * int (* one counter cell, by Event.to_int index *)
  | Cells of Counters.t array * int (* the same cell summed across instances *)
  | Int_fn of (unit -> int) (* any int probe; must not allocate *)

type mode = Cumulative | Level

type channel = {
  ch_name : string;
  ch_source : source;
  ch_mode : mode;
  mutable ch_prev : int; (* last raw reading (Cumulative delta base) *)
  ch_ring : float array;
}

type t = {
  interval : float;
  mask : int; (* ring capacity - 1; capacity is a power of two *)
  mutable chans : channel list; (* reverse registration order, until freeze *)
  mutable frozen : channel array; (* registration order; set by freeze *)
  times : float array;
  mutable written : int; (* windows recorded (monotonic; rings hold the tail) *)
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let create ?(capacity = 4096) ~interval () =
  if not (interval > 0.) then invalid_arg "Timeseries.create: interval must be positive";
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  let cap = next_pow2 capacity 1 in
  {
    interval;
    mask = cap - 1;
    chans = [];
    frozen = [||];
    times = Array.make cap 0.;
    written = 0;
  }

let interval t = t.interval
let capacity t = t.mask + 1

let add t ~name ~mode source =
  if t.frozen <> [||] then invalid_arg "Timeseries.add: channels are frozen (already ticking)";
  if List.exists (fun c -> c.ch_name = name) t.chans then
    invalid_arg (Printf.sprintf "Timeseries.add: duplicate channel %S" name);
  t.chans <-
    { ch_name = name; ch_source = source; ch_mode = mode; ch_prev = 0; ch_ring = Array.make (t.mask + 1) 0. }
    :: t.chans

let[@inline] read_source = function
  | Cell (c, i) -> Counters.cell c i
  | Cells (cs, i) ->
      let s = ref 0 in
      for k = 0 to Array.length cs - 1 do
        s := !s + Counters.cell (Array.unsafe_get cs k) i
      done;
      !s
  | Int_fn f -> f ()

(* Fix the channel set (registration order) and baseline the cumulative
   sources, so the first window's delta counts from attach time, not from
   zero.  Idempotent; [tick] calls it on first use. *)
let freeze t =
  if t.frozen = [||] && t.chans <> [] then begin
    t.frozen <- Array.of_list (List.rev t.chans);
    Array.iter (fun ch -> ch.ch_prev <- read_source ch.ch_source) t.frozen
  end

let channels t =
  freeze t;
  Array.to_list (Array.map (fun c -> c.ch_name) t.frozen)

let chan_index t name =
  freeze t;
  let rec go i =
    if i >= Array.length t.frozen then None
    else if t.frozen.(i).ch_name = name then Some i
    else go (i + 1)
  in
  go 0

(* One telemetry window at absolute sim time [time].  Allocation-free. *)
let tick t ~time =
  freeze t;
  let slot = t.written land t.mask in
  Array.unsafe_set t.times slot time;
  let chans = t.frozen in
  for k = 0 to Array.length chans - 1 do
    let ch = Array.unsafe_get chans k in
    let v = read_source ch.ch_source in
    let stored =
      match ch.ch_mode with
      | Cumulative ->
          let d = v - ch.ch_prev in
          ch.ch_prev <- v;
          float_of_int d
      | Level -> float_of_int v
    in
    Array.unsafe_set ch.ch_ring slot stored
  done;
  t.written <- t.written + 1

(* The aux-chain driver for sequential runs; partitioned runs use
   [Net.run_parallel ?pulse] instead.  Window k is stamped [k *. interval]
   (multiplication, matching [Par.drive]'s pulses); the chain stops past
   [until]. *)
let attach t sim ~until =
  let k = ref 1 in
  let rec arm () =
    let tm = float_of_int !k *. t.interval in
    if tm <= until then
      ignore
        (Sim.schedule_aux sim ~time:tm (fun () ->
             tick t ~time:tm;
             incr k;
             arm ()))
  in
  freeze t;
  arm ()

(* --- accessors (oldest surviving window = index 0) ---------------------- *)

let written t = t.written
let length t = min t.written (t.mask + 1)

let[@inline] slot_of t i =
  let n = length t in
  if i < 0 || i >= n then invalid_arg "Timeseries: window index out of range";
  (t.written - n + i) land t.mask

let time_at t i = t.times.(slot_of t i)

let value t ~chan i =
  freeze t;
  t.frozen.(chan).ch_ring.(slot_of t i)

(* Per-second rate for cumulative channels; levels pass through. *)
let rate t ~chan i =
  freeze t;
  let ch = t.frozen.(chan) in
  let v = ch.ch_ring.(slot_of t i) in
  match ch.ch_mode with Cumulative -> v /. t.interval | Level -> v

let mode t ~chan =
  freeze t;
  t.frozen.(chan).ch_mode

let chan_name t ~chan =
  freeze t;
  t.frozen.(chan).ch_name

(* Latest window, without index arithmetic at call sites. *)
let last_value t ~chan = value t ~chan (length t - 1)
let last_rate t ~chan = rate t ~chan (length t - 1)
let last_time t = time_at t (length t - 1)

(* --- export ------------------------------------------------------------- *)

(* Last [last] windows (default: all surviving) as row objects. *)
let rows ?last t =
  freeze t;
  let n = length t in
  let keep = match last with None -> n | Some w -> min n (max 0 w) in
  let out = ref [] in
  for i = n - 1 downto n - keep do
    let row =
      ("t", Export.Float (time_at t i))
      :: Array.to_list
           (Array.mapi (fun c ch -> (ch.ch_name, Export.Float (value t ~chan:c i))) t.frozen)
    in
    out := Export.Obj row :: !out
  done;
  !out

let to_json ?last t =
  freeze t;
  Export.Obj
    [
      ("interval", Export.Float t.interval);
      ( "channels",
        Export.List
          (Array.to_list
             (Array.map
                (fun ch ->
                  Export.Obj
                    [
                      ("name", Export.String ch.ch_name);
                      ( "mode",
                        Export.String
                          (match ch.ch_mode with Cumulative -> "cumulative" | Level -> "level") );
                    ])
                t.frozen)) );
      ("windows", Export.List (rows ?last t));
    ]

let to_jsonl t buf =
  List.iter
    (fun row ->
      Export.to_buffer buf row;
      Buffer.add_char buf '\n')
    (rows t)

let to_csv t buf =
  freeze t;
  Buffer.add_string buf "t";
  Array.iter
    (fun ch ->
      Buffer.add_char buf ',';
      Buffer.add_string buf ch.ch_name)
    t.frozen;
  Buffer.add_char buf '\n';
  let n = length t in
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "%.9g" (time_at t i));
    Array.iteri
      (fun c _ -> Buffer.add_string buf (Printf.sprintf ",%.9g" (value t ~chan:c i)))
      t.frozen;
    Buffer.add_char buf '\n'
  done
