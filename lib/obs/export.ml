(* A minimal JSON value and serializer.  No JSON library ships in this
   environment, so exports are built by hand; the emitter guarantees valid
   JSON (strings escaped, no NaN/Infinity — callers convert those to
   [Null] via [number_or_null], which is how "no data" is distinguished
   from a real zero downstream). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let number_or_null x =
  if Float.is_nan x || x = infinity || x = neg_infinity then Null else Float x

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf x =
  if Float.is_nan x || x = infinity || x = neg_infinity then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" x)
  else Buffer.add_string buf (Printf.sprintf "%.9g" x)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> add_float buf x
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          escape buf k;
          Buffer.add_string buf ": ";
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

(* Pretty variant: objects and lists one entry per line, two-space indent.
   The stats files are meant to be read (and diffed) by humans and grepped
   by the bench comparators, both of which want one "key": value per line. *)
let rec to_buffer_pretty buf ~indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Null | Bool _ | Int _ | Float _ | String _ -> to_buffer buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          to_buffer_pretty buf ~indent:(indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          escape buf k;
          Buffer.add_string buf ": ";
          to_buffer_pretty buf ~indent:(indent + 2) v)
        kvs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  to_buffer_pretty buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf
