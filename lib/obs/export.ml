(* A minimal JSON value and serializer.  No JSON library ships in this
   environment, so exports are built by hand; the emitter guarantees valid
   JSON (strings escaped, no NaN/Infinity — callers convert those to
   [Null] via [number_or_null], which is how "no data" is distinguished
   from a real zero downstream). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let number_or_null x =
  if Float.is_nan x || x = infinity || x = neg_infinity then Null else Float x

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf x =
  if Float.is_nan x || x = infinity || x = neg_infinity then Buffer.add_string buf "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" x)
  else Buffer.add_string buf (Printf.sprintf "%.9g" x)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> add_float buf x
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          escape buf k;
          Buffer.add_string buf ": ";
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

(* Pretty variant: objects and lists one entry per line, two-space indent.
   The stats files are meant to be read (and diffed) by humans and grepped
   by the bench comparators, both of which want one "key": value per line. *)
let rec to_buffer_pretty buf ~indent v =
  let pad n = Buffer.add_string buf (String.make n ' ') in
  match v with
  | Null | Bool _ | Int _ | Float _ | String _ -> to_buffer buf v
  | List [] -> Buffer.add_string buf "[]"
  | List xs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          to_buffer_pretty buf ~indent:(indent + 2) x)
        xs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (indent + 2);
          escape buf k;
          Buffer.add_string buf ": ";
          to_buffer_pretty buf ~indent:(indent + 2) v)
        kvs;
      Buffer.add_char buf '\n';
      pad indent;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* A recursive-descent parser for the subset this module emits (all of
   JSON except exotic number forms; numbers with '.', 'e' or 'E' become
   [Float], the rest [Int]).  Exists so flight-recorder dumps and stats
   files round-trip through [t] in tests and tooling — not a general
   validator, but it rejects everything it cannot represent. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> raise (Failure (Printf.sprintf "at %d: %s" !pos m))) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else error "expected %c" c
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then begin
      pos := !pos + String.length lit;
      v
    end
    else error "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then error "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; incr pos
               | '\\' -> Buffer.add_char buf '\\'; incr pos
               | '/' -> Buffer.add_char buf '/'; incr pos
               | 'n' -> Buffer.add_char buf '\n'; incr pos
               | 'r' -> Buffer.add_char buf '\r'; incr pos
               | 't' -> Buffer.add_char buf '\t'; incr pos
               | 'b' -> Buffer.add_char buf '\b'; incr pos
               | 'f' -> Buffer.add_char buf '\012'; incr pos
               | 'u' ->
                   if !pos + 4 >= n then error "bad \\u escape";
                   let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                   (* The emitter only writes \u00XX control codes; decode
                      the Latin-1 range, reject the rest. *)
                   if code > 0xff then error "unsupported \\u escape %04x" code;
                   Buffer.add_char buf (Char.chr code);
                   pos := !pos + 5
               | c -> error "bad escape \\%c" c);
            go ()
        | c -> Buffer.add_char buf c; incr pos; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
          is_float := true;
          true
      | _ -> false
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt tok with Some f -> Float f | None -> error "bad number %S" tok
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with Some f -> Float f | None -> error "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (incr pos; Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; members ((k, v) :: acc)
            | Some '}' -> incr pos; Obj (List.rev ((k, v) :: acc))
            | _ -> error "expected , or } in object"
          in
          members []
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (incr pos; List [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; elements (v :: acc)
            | Some ']' -> incr pos; List (List.rev (v :: acc))
            | _ -> error "expected , or ] in array"
          in
          elements []
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error "unexpected character %c" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage" else v
  with
  | v -> Ok v
  | exception Failure m -> Error m

let to_string_pretty v =
  let buf = Buffer.create 1024 in
  to_buffer_pretty buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf
