(** In-run telemetry: cadence-scheduled snapshots of integer sources into
    preallocated struct-of-arrays rings (DESIGN.md §15).

    Channels are registered before the first tick and then frozen into an
    array; each holds a power-of-two float ring that overwrites
    oldest-first, like {!Trace}.  The tick path is allocation-free: one
    unboxed float store per channel plus an int read of its source.

    Ticks fire either from {!attach} — a {!Sim.schedule_aux} chain, whose
    negative sequence numbers leave the run bit-identical to a telemetry-off
    run — or from the barrier pulses of partitioned runs
    ([Net.run_parallel ?pulse]).  Both stamp window k at [k *. interval]
    by multiplication, so interval series are identical for any partition
    count and any [--jobs] value. *)

type source =
  | Cell of Counters.t * int
      (** one counter cell, by [Event.to_int] index (resolve once, at
          registration) *)
  | Cells of Counters.t array * int  (** the same cell summed across instances *)
  | Int_fn of (unit -> int)
      (** any integer probe (queue depth, cache size, events fired); must
          not allocate — it runs on the tick path *)

type mode =
  | Cumulative  (** store the delta since the previous tick; [rate] divides by the interval *)
  | Level  (** store the instantaneous value *)

type t

val create : ?capacity:int -> interval:float -> unit -> t
(** [capacity] (default 4096, rounded up to a power of two) is the number
    of windows each ring retains; [interval] is the tick cadence in
    simulated seconds. *)

val interval : t -> float
val capacity : t -> int

val add : t -> name:string -> mode:mode -> source -> unit
(** Register a channel.  Raises [Invalid_argument] after the first tick
    (the channel set is frozen) or on a duplicate name. *)

val freeze : t -> unit
(** Fix the channel set and baseline cumulative sources.  Idempotent;
    {!tick} and every accessor call it implicitly. *)

val tick : t -> time:float -> unit
(** Record one window at absolute sim time [time].  Allocation-free. *)

val attach : t -> Sim.t -> until:float -> unit
(** Drive {!tick} from a read-only auxiliary event chain at
    [k *. interval] for k = 1, 2, ... while [<= until].  Sequential runs
    only; partitioned runs pass [(interval, tick)] as [Net.run_parallel]'s
    [?pulse] instead. *)

(** {1 Accessors} — window index 0 is the oldest surviving window. *)

val written : t -> int
(** Total windows recorded (monotonic; the rings hold the tail). *)

val length : t -> int
val time_at : t -> int -> float
val channels : t -> string list
val chan_index : t -> string -> int option
val chan_name : t -> chan:int -> string
val mode : t -> chan:int -> mode

val value : t -> chan:int -> int -> float
(** The stored figure: a delta for [Cumulative] channels, the level
    otherwise. *)

val rate : t -> chan:int -> int -> float
(** [value / interval] for [Cumulative] channels (a per-second rate);
    [value] unchanged for [Level] channels. *)

val last_value : t -> chan:int -> float
val last_rate : t -> chan:int -> float
val last_time : t -> float

(** {1 Export} *)

val rows : ?last:int -> t -> Export.t list
(** One [Obj] per window, oldest first: [{"t": ..., "<chan>": ...}].
    [last] keeps only the newest [last] windows. *)

val to_json : ?last:int -> t -> Export.t
(** [{interval; channels: [{name; mode}]; windows: rows}]. *)

val to_jsonl : t -> Buffer.t -> unit
val to_csv : t -> Buffer.t -> unit
