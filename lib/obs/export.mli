(** A minimal JSON value + serializer (no JSON library is available).
    Emitted JSON is always valid: strings are escaped, and non-finite
    floats serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val number_or_null : float -> t
(** [Null] for NaN/±infinity — the "no data" marker, distinguishable from
    a genuine zero (e.g. {!Workload.Metrics.fraction_completed_opt} when
    nothing was attempted). *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val to_string_pretty : t -> string
(** One ["key": value] per line, two-space indent, trailing newline —
    greppable by the bench comparators and diffable by humans. *)

val parse : string -> (t, string) result
(** Parse the subset of JSON this module emits (numbers written with a
    ['.'], ['e'] or ['E'] become [Float], the rest [Int]; [\u00XX]
    escapes decode, higher code points are rejected).  Round-trips
    everything {!to_string}/{!to_string_pretty} produce — how
    flight-recorder dumps are read back in tests and tooling. *)
