(** The flight recorder (DESIGN.md §15): freeze the last W telemetry
    windows, the incident list so far, and the packet-trace ring into one
    self-contained crash-dump JSON artifact when something goes wrong —
    an incident onset, a chaos invariant failure, or any caller trigger.

    Dumps are named [<dir>/flight_<label>_<n>.json] and capped at
    [max_dumps] per recorder so a miscalibrated detector cannot fill a
    disk.  The JSON round-trips through {!Export.parse}. *)

type t

val create : ?windows:int -> ?max_dumps:int -> dir:string -> label:string -> unit -> t
(** [windows] (default 64) telemetry windows per dump; [max_dumps]
    (default 4) dumps per recorder. *)

val set_timeseries : t -> Timeseries.t -> unit
val set_trace : t -> Trace.t -> unit
(** No-op on [Trace.nop]. *)

val set_detect : t -> Detect.t -> unit

val trigger : ?node_name:(int -> string) -> t -> reason:string -> time:float -> string option
(** Write a dump now; returns its path, or [None] once [max_dumps] is
    reached.  Creates [dir] (and parents) on first use.  An unwritable
    [dir] never raises: the trigger fires from detector callbacks on the
    simulation tick path, so a filesystem failure logs to stderr and
    returns [None] instead of aborting the run. *)

val dump_json : ?node_name:(int -> string) -> t -> reason:string -> time:float -> Export.t
(** The dump as a JSON value, without touching the filesystem. *)

val dumps : t -> string list
(** Paths written so far, oldest first. *)
