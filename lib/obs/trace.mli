(** Packet-lifecycle trace ring: a fixed-capacity struct-of-arrays buffer
    of (time, node, event, src, dst, size) records with 1-in-k sampling and
    per-event-kind filters.

    Recording allocates nothing (six unsafe stores into preallocated flat
    arrays); once full the ring overwrites oldest-first.  {!nop} is the
    disabled instance: {!record} on it is a load and a branch. *)

type t

val nop : t
(** Recording into [nop] is a no-op (one flag test). *)

val create : ?capacity:int -> ?sample:int -> ?filter:(Event.t -> bool) -> unit -> t
(** [capacity] (default 65536) is rounded up to a power of two.  [sample]
    keeps 1 record in every [sample] filtered offers (default 1 = all).
    [filter] selects which event kinds are recorded (default all).  Raises
    [Invalid_argument] on nonpositive capacity or sample. *)

val is_nop : t -> bool
val capacity : t -> int
val sample : t -> int

val record :
  t -> time:float -> node:int -> event:Event.t -> src:int -> dst:int -> size:int -> unit
(** Allocation-free.  Filter first, then the sampling counter: only
    filtered offers advance the 1-in-k phase. *)

val seen : t -> int
(** Offers that passed the filter (sampled or not). *)

val written : t -> int
(** Records actually stored since creation (monotonic; the ring holds the
    last [capacity] of them). *)

val length : t -> int
(** Records currently held, [min written capacity]. *)

val iter :
  t ->
  (time:float -> node:int -> event:int -> src:int -> dst:int -> size:int -> unit) ->
  unit
(** Oldest surviving record first.  [event] is an [Event.to_int] code. *)

val to_jsonl : ?node_name:(int -> string) -> t -> Buffer.t -> unit
(** One JSON object per line:
    [{"t":…,"node":…,"event":…,"src":…,"dst":…,"size":…}]. *)

val to_csv : ?node_name:(int -> string) -> t -> Buffer.t -> unit
