(** Event-loop profiler: per-{!Sim.Kind} wall time and event counts
    (via a {!Sim.probe}), plus named occupancy gauges sampled on a sim-time
    cadence into {!Stats.Histogram}/{!Stats.Summary}. *)

type t

type gauge

val create : clock:(unit -> float) -> unit -> t
(** [clock] supplies wall time (drivers pass [Unix.gettimeofday]). *)

val attach : t -> Sim.t -> unit
(** Install the probe; every fired event is then counted and timed under
    its scheduling-site kind.  Observation only — scheduling order is
    untouched. *)

val detach : Sim.t -> unit

val hit : t -> kind:int -> dt:float -> unit
(** The raw accumulator (exposed for tests). *)

val absorb : t -> t -> unit
(** [absorb dst src] folds [src]'s event counts, wall time, gauges and
    sample count into [dst].  The parallel driver merges its
    per-partition profiler instances this way once the run is over (each
    instance is written by exactly one domain during the run). *)

val events : t -> kind:int -> int
val wall_s : t -> kind:int -> float
val total_events : t -> int
val total_wall_s : t -> float

val kind_rows : t -> (string * int * float * float) list
(** Nonzero kinds in kind order: (name, events, wall seconds, ns/event). *)

(** {1 Gauges} *)

val gauge : t -> name:string -> lo:float -> hi:float -> bins:int -> gauge
(** Find or create a named log-scale histogram gauge (zero values land in
    the underflow bucket). *)

val observe : gauge -> float -> unit

val sample_every :
  t -> Sim.t -> period:float -> (gauge * (unit -> float)) list -> unit
(** Schedule a recurring sim event (kind [Sim.Kind.obs]) that reads each
    gauge's source every [period] sim seconds, starting one period in.  The
    sampler only reads, but its events consume scheduler sequence numbers:
    gauge-enabled runs are deterministic yet not tie-break-identical to
    unobserved runs.  Raises [Invalid_argument] on a nonpositive period. *)

val samples : t -> int
val gauges : t -> gauge list
val gauge_name : gauge -> string
val gauge_hist : gauge -> Stats.Histogram.t
val gauge_summary : gauge -> Stats.Summary.t

val memory_gauges : t -> Sim.t -> period:float -> unit
(** Register and sample two footprint gauges every [period] sim seconds:
    ["live-heap-words"] (major-heap words, [Gc.quick_stat]) and
    ["sim-pending-events"] ({!Sim.pending}).  Their [g_max] in
    {!Report.gauge_rows} is the peak-memory number the scale benchmark
    reports, so BENCH_scale.json and the dashboard read the same
    snapshots. *)
