(* Event-loop profiler: wall time and event counts bucketed by the
   scheduling-site kind every event carries ([Sim.Kind]), plus named gauges
   (queue depth / occupancy histograms) sampled on a sim-time cadence.

   The wall clock is injected ([Unix.gettimeofday] from drivers) so this
   library stays portable; attaching to a simulator installs a [Sim.probe],
   which observes only and cannot change scheduling order. *)

type gauge = { g_name : string; g_hist : Stats.Histogram.t; g_summary : Stats.Summary.t }

type t = {
  clock : unit -> float;
  counts : int array; (* per Sim.Kind *)
  wall : float array; (* seconds per Sim.Kind *)
  mutable gauges : gauge list; (* reverse creation order *)
  mutable samples : int; (* gauge sampling rounds completed *)
}

let create ~clock () =
  {
    clock;
    counts = Array.make Sim.Kind.count 0;
    wall = Array.make Sim.Kind.count 0.;
    gauges = [];
    samples = 0;
  }

let hit t ~kind ~dt =
  let k = if kind >= 0 && kind < Sim.Kind.count then kind else Sim.Kind.other in
  t.counts.(k) <- t.counts.(k) + 1;
  t.wall.(k) <- t.wall.(k) +. dt

let attach t sim =
  Sim.set_probe sim (Some { Sim.pr_clock = t.clock; pr_hit = (fun ~kind ~dt -> hit t ~kind ~dt) })

let detach sim = Sim.set_probe sim None

(* Merge [src]'s buckets into [dst] — how the parallel driver folds its
   per-partition profiler instances (each written by one domain during the
   run) into a single report after the barrier. *)
let absorb dst src =
  for k = 0 to Sim.Kind.count - 1 do
    dst.counts.(k) <- dst.counts.(k) + src.counts.(k);
    dst.wall.(k) <- dst.wall.(k) +. src.wall.(k)
  done;
  dst.gauges <- src.gauges @ dst.gauges; (* both reversed; dst's stay first *)
  dst.samples <- dst.samples + src.samples

let events t ~kind = t.counts.(kind)
let wall_s t ~kind = t.wall.(kind)
let total_events t = Array.fold_left ( + ) 0 t.counts
let total_wall_s t = Array.fold_left ( +. ) 0. t.wall

(* --- gauges ------------------------------------------------------------ *)

(* Queue depths span zero to thousands of packets, so the default shape is
   the log-scale histogram (zero lands in the underflow bucket). *)
let gauge t ~name ~lo ~hi ~bins =
  match List.find_opt (fun g -> g.g_name = name) t.gauges with
  | Some g -> g
  | None ->
      let g =
        {
          g_name = name;
          g_hist = Stats.Histogram.create_log ~lo ~hi ~bins;
          g_summary = Stats.Summary.create ();
        }
      in
      t.gauges <- g :: t.gauges;
      g

let observe g v =
  Stats.Histogram.add g.g_hist v;
  Stats.Summary.add g.g_summary v

let gauges t = List.rev t.gauges
let gauge_name g = g.g_name
let gauge_hist g = g.g_hist
let gauge_summary g = g.g_summary

(* Sample [read] for every named gauge each [period] of sim time, starting
   one period in.  The sampler reads qdisc occupancy only — it never
   touches packet state — but its events do consume scheduler sequence
   numbers, so runs with gauges enabled are deterministic yet not
   tie-break-identical to unobserved runs (DESIGN.md §10). *)
let sample_every t sim ~period reads =
  if period <= 0. then invalid_arg "Profile.sample_every: period must be positive";
  let rec tick () =
    List.iter
      (fun (gauge, read) ->
        t.samples <- t.samples + 1;
        observe gauge (read ()))
      reads;
    ignore (Sim.schedule ~kind:Sim.Kind.obs sim ~delay:period tick)
  in
  ignore (Sim.schedule ~kind:Sim.Kind.obs sim ~delay:period tick)

let samples t = t.samples

(* --- rendering --------------------------------------------------------- *)

let kind_rows t =
  let rows = ref [] in
  for k = Sim.Kind.count - 1 downto 0 do
    if t.counts.(k) > 0 then
      rows :=
        (Sim.Kind.name k, t.counts.(k), t.wall.(k), 1e9 *. t.wall.(k) /. float_of_int t.counts.(k))
        :: !rows
  done;
  !rows

(* Footprint gauges: live major-heap words from the GC and the scheduler's
   pending-event count, sampled on the same sim-time cadence as the queue
   gauges.  The scale benchmark's peak-memory figures are the [g_max] of
   these rows, so they flow through the exact snapshot machinery
   (Report.gauge_rows -> Export) as every other number. *)
let memory_gauges t sim ~period =
  let heap = gauge t ~name:"live-heap-words" ~lo:1e4 ~hi:1e10 ~bins:28 in
  let pend = gauge t ~name:"sim-pending-events" ~lo:1. ~hi:1e7 ~bins:28 in
  sample_every t sim ~period
    [
      (heap, fun () -> float_of_int (Gc.quick_stat ()).Gc.heap_words);
      (pend, fun () -> float_of_int (Sim.pending sim));
    ]
