(* Preallocated per-router event counters.

   An increment is two unsafe array operations on an int array — no bounds
   check, no hashing, no allocation — so datapath modules increment
   unconditionally.  "Disabled" is the shared [nop] instance: its array
   absorbs the writes, no per-router memory is kept and nothing is ever
   read back, which keeps the hot paths free of enable/disable branches.
   (Worker domains may race on [nop]'s cells; the values are garbage by
   design and int-array races are well-defined in OCaml, so this is
   harmless.) *)

type t = { name : string; counts : int array }

let nop = { name = "nop"; counts = Array.make Event.count 0 }

let create ~name () = { name; counts = Array.make Event.count 0 }

let is_nop t = t == nop
let name t = t.name

let[@inline] incr t e =
  let i = Event.to_int e in
  Array.unsafe_set t.counts i (Array.unsafe_get t.counts i + 1)

let[@inline] add t e n =
  let i = Event.to_int e in
  Array.unsafe_set t.counts i (Array.unsafe_get t.counts i + n)

let get t e = t.counts.(Event.to_int e)

(* Raw cell read by event index — the allocation-free form the telemetry
   tick path uses (the index is resolved once at channel registration). *)
let cell t i = t.counts.(i)

let reset t = Array.fill t.counts 0 Event.count 0

let snapshot t = (t.name, Array.copy t.counts)

let total t = Array.fold_left ( + ) 0 t.counts

(* --- registry --------------------------------------------------------- *)

(* One registry per simulation run.  Instances are kept in creation order,
   so snapshots (and everything rendered or merged from them) are
   deterministic regardless of how a sweep is parallelized. *)
type registry = { mutable items : t list (* reverse creation order *) }

let registry () = { items = [] }

let register reg ~name =
  let c = create ~name () in
  reg.items <- c :: reg.items;
  c

let registered reg = List.rev reg.items

let find reg ~name = List.find_opt (fun c -> c.name = name) reg.items

(* --- domain-safe snapshots -------------------------------------------- *)

type snap = (string * int array) list

let snapshot_all reg = List.map snapshot (registered reg)

(* Sum counters by name; names absent from [acc] append in first-seen
   order, so folding a sweep's snapshots left to right (submission order)
   is deterministic. *)
let merge_snaps (a : snap) (b : snap) : snap =
  let merged =
    List.map
      (fun (name, counts) ->
        match List.assoc_opt name b with
        | None -> (name, Array.copy counts)
        | Some other -> (name, Array.init Event.count (fun i -> counts.(i) + other.(i))))
      a
  in
  let extra = List.filter (fun (name, _) -> not (List.mem_assoc name a)) b in
  merged @ List.map (fun (name, counts) -> (name, Array.copy counts)) extra
