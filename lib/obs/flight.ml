(* The flight recorder (DESIGN.md §15): on an incident onset, an invariant
   failure, or any caller-chosen trigger, freeze the recent telemetry
   windows plus the packet-trace ring into one self-contained JSON
   artifact on disk.

   A dump carries everything needed to read it in isolation — the trigger
   reason and sim time, the channel schema, the last W windows, the
   incident list so far, and the trace tail — so a CI artifact from a
   failed chaos run explains itself without the repo checked out.  Dumps
   are capped ([max_dumps], default 4) because one bad detector threshold
   on a long run must not fill a disk. *)

type t = {
  dir : string;
  label : string;
  windows : int; (* telemetry windows to keep per dump *)
  max_dumps : int;
  mutable ts : Timeseries.t option;
  mutable trace : Trace.t option;
  mutable detect : Detect.t option;
  mutable seq : int;
  mutable dumps : string list; (* paths written, reverse order *)
}

let create ?(windows = 64) ?(max_dumps = 4) ~dir ~label () =
  if windows <= 0 then invalid_arg "Flight.create: windows must be positive";
  { dir; label; windows; max_dumps; ts = None; trace = None; detect = None; seq = 0; dumps = [] }

let set_timeseries t ts = t.ts <- Some ts
let set_trace t trace = if not (Trace.is_nop trace) then t.trace <- Some trace
let set_detect t d = t.detect <- Some d

let dumps t = List.rev t.dumps

(* Mirrors Trace.to_jsonl's fields, as structured values. *)
let trace_json ?node_name trace =
  let node_name = match node_name with Some f -> f | None -> string_of_int in
  let rows = ref [] in
  Trace.iter trace (fun ~time ~node ~event ~src ~dst ~size ->
      rows :=
        Export.Obj
          [
            ("t", Export.Float time);
            ("node", Export.String (node_name node));
            ("event", Export.String (Event.name_of_int event));
            ("src", Export.Int src);
            ("dst", Export.Int dst);
            ("size", Export.Int size);
          ]
        :: !rows);
  Export.List (List.rev !rows)

let dump_json ?node_name t ~reason ~time =
  Export.Obj
    ([
       ("flight", Export.Bool true);
       ("label", Export.String t.label);
       ("reason", Export.String reason);
       ("time", Export.Float time);
     ]
    @ (match t.ts with
      | None -> []
      | Some ts -> [ ("series", Timeseries.to_json ~last:t.windows ts) ])
    @ (match t.detect with None -> [] | Some d -> [ ("incidents", Detect.to_json d) ])
    @
    match t.trace with
    | None -> []
    | Some trace -> [ ("trace", trace_json ?node_name trace) ])

(* [mkdir -p] on the stdlib only. *)
let rec ensure_dir dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_dir (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* A filesystem-safe slug of the scenario label. *)
let slug s =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '-') s

let trigger ?node_name t ~reason ~time =
  if t.seq < t.max_dumps then begin
    t.seq <- t.seq + 1;
    let path =
      Filename.concat t.dir (Printf.sprintf "flight_%s_%d.json" (slug t.label) t.seq)
    in
    ensure_dir t.dir;
    let json = dump_json ?node_name t ~reason ~time in
    (* The trigger fires from inside detector callbacks on the simulation
       tick path: an unwritable [dir] (permissions, path is a file) must
       degrade to a missing dump, not abort the run at incident onset. *)
    match open_out path with
    | exception Sys_error msg ->
        Printf.eprintf "Obs.Flight: dropping dump %s: %s\n%!" path msg;
        None
    | oc -> (
        match
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (Export.to_string_pretty json))
        with
        | () ->
            t.dumps <- path :: t.dumps;
            Some path
        | exception Sys_error msg ->
            Printf.eprintf "Obs.Flight: dropping dump %s: %s\n%!" path msg;
            None)
  end
  else None
