(* The static taxonomy of datapath events.  Counter arrays and trace-ring
   filters are indexed by [to_int], so the enumeration must stay dense:
   adding a constructor means extending [to_int], [name] and [count]
   together (the [all]-roundtrip test pins the three in sync). *)

type t =
  (* router ingress, one per packet *)
  | Packets_in
  | Legacy_in
  | Request_in
  | Regular_in
  (* request path *)
  | Request_minted
  | Demoted_header_full
  (* regular path verdicts *)
  | Nonce_hit
  | Nonce_miss
  | Regular_validated
  | Renewal
  | Demoted_bad_cap
  | Demoted_cap_expired
  | Demoted_no_cap
  | Demoted_bytes_exhausted
  | Demoted_cache_full
  | Demoted_over_limit
  | Demoted
  (* flow-cache lifecycle *)
  | Cache_inserted
  | Cache_renewed
  | Cache_evicted
  (* link / forwarding sites (recorded by the Net bridge) *)
  | Queue_drop_request
  | Queue_drop_regular
  | Queue_drop_legacy
  | No_route
  | Hops_exceeded
  | Transmitted
  | Delivered
  (* fault injection / recovery (lib/faults + Host) *)
  | Fault_injected
  | Demoted_recovered
  | Reacquired

let to_int = function
  | Packets_in -> 0
  | Legacy_in -> 1
  | Request_in -> 2
  | Regular_in -> 3
  | Request_minted -> 4
  | Demoted_header_full -> 5
  | Nonce_hit -> 6
  | Nonce_miss -> 7
  | Regular_validated -> 8
  | Renewal -> 9
  | Demoted_bad_cap -> 10
  | Demoted_cap_expired -> 11
  | Demoted_no_cap -> 12
  | Demoted_bytes_exhausted -> 13
  | Demoted_cache_full -> 14
  | Demoted_over_limit -> 15
  | Demoted -> 16
  | Cache_inserted -> 17
  | Cache_renewed -> 18
  | Cache_evicted -> 19
  | Queue_drop_request -> 20
  | Queue_drop_regular -> 21
  | Queue_drop_legacy -> 22
  | No_route -> 23
  | Hops_exceeded -> 24
  | Transmitted -> 25
  | Delivered -> 26
  | Fault_injected -> 27
  | Demoted_recovered -> 28
  | Reacquired -> 29

let count = 30

let all =
  [
    Packets_in;
    Legacy_in;
    Request_in;
    Regular_in;
    Request_minted;
    Demoted_header_full;
    Nonce_hit;
    Nonce_miss;
    Regular_validated;
    Renewal;
    Demoted_bad_cap;
    Demoted_cap_expired;
    Demoted_no_cap;
    Demoted_bytes_exhausted;
    Demoted_cache_full;
    Demoted_over_limit;
    Demoted;
    Cache_inserted;
    Cache_renewed;
    Cache_evicted;
    Queue_drop_request;
    Queue_drop_regular;
    Queue_drop_legacy;
    No_route;
    Hops_exceeded;
    Transmitted;
    Delivered;
    Fault_injected;
    Demoted_recovered;
    Reacquired;
  ]

let name = function
  | Packets_in -> "packets_in"
  | Legacy_in -> "legacy_in"
  | Request_in -> "request_in"
  | Regular_in -> "regular_in"
  | Request_minted -> "request_minted"
  | Demoted_header_full -> "demoted_header_full"
  | Nonce_hit -> "nonce_hit"
  | Nonce_miss -> "nonce_miss"
  | Regular_validated -> "regular_validated"
  | Renewal -> "renewal"
  | Demoted_bad_cap -> "demoted_bad_cap"
  | Demoted_cap_expired -> "demoted_cap_expired"
  | Demoted_no_cap -> "demoted_no_cap"
  | Demoted_bytes_exhausted -> "demoted_bytes_exhausted"
  | Demoted_cache_full -> "demoted_cache_full"
  | Demoted_over_limit -> "demoted_over_limit"
  | Demoted -> "demoted"
  | Cache_inserted -> "cache_inserted"
  | Cache_renewed -> "cache_renewed"
  | Cache_evicted -> "cache_evicted"
  | Queue_drop_request -> "queue_drop_request"
  | Queue_drop_regular -> "queue_drop_regular"
  | Queue_drop_legacy -> "queue_drop_legacy"
  | No_route -> "no_route"
  | Hops_exceeded -> "hops_exceeded"
  | Transmitted -> "transmitted"
  | Delivered -> "delivered"
  | Fault_injected -> "fault_injected"
  | Demoted_recovered -> "demoted_recovered"
  | Reacquired -> "reacquired"

let names = Array.of_list (List.map name all)

let name_of_int i = if i >= 0 && i < count then names.(i) else "?"
