type outcome = Completed of { duration : float } | Aborted of { reason : string; at : float }

let max_syn_retransmissions = 8
let max_segment_transmissions = 10
let syn_timeout = 1.0

type client_state = Syn_sent | Established | Finished

type client = {
  sim : Sim.t;
  conn_id : int;
  transfer : int;
  mss : int;
  tx : Wire.Tcp_segment.t -> unit;
  on_complete : outcome -> unit;
  rto : Rto.t;
  nsegs : int;
  tx_count : int array; (* transmissions per data segment *)
  first_sent : float array; (* first transmission time, for RTT sampling *)
  mutable state : client_state;
  mutable started_at : float;
  mutable syn_tries : int;
  mutable snd_una : int; (* first unacked byte *)
  mutable snd_next : int; (* next byte to send *)
  mutable cwnd : float; (* bytes *)
  mutable ssthresh : float;
  mutable dupacks : int;
  mutable timer : Sim.handle option;
}

let seg_of_byte c byte = byte / c.mss
let seg_start c seg = seg * c.mss
let seg_len c seg = min c.mss (c.transfer - seg_start c seg)

let create_client ~sim ~conn_id ~transfer_bytes ?(mss = 1000) ~tx ~on_complete () =
  if transfer_bytes <= 0 then invalid_arg "Conn.create_client: transfer must be positive";
  if mss <= 0 then invalid_arg "Conn.create_client: mss must be positive";
  let nsegs = (transfer_bytes + mss - 1) / mss in
  {
    sim;
    conn_id;
    transfer = transfer_bytes;
    mss;
    tx;
    on_complete;
    rto = Rto.create ();
    nsegs;
    tx_count = Array.make nsegs 0;
    first_sent = Array.make nsegs 0.;
    state = Syn_sent;
    started_at = 0.;
    syn_tries = 0;
    snd_una = 0;
    snd_next = 0;
    (* ns-2's default initial window of two segments. *)
    cwnd = 2. *. float_of_int mss;
    ssthresh = 65536.;
    dupacks = 0;
    timer = None;
  }

let client_conn_id c = c.conn_id
let client_bytes_acked c = c.snd_una
let client_finished c = c.state = Finished

let cancel_timer c =
  match c.timer with
  | None -> ()
  | Some h ->
      Sim.cancel h;
      c.timer <- None

let finish c outcome =
  if c.state <> Finished then begin
    c.state <- Finished;
    cancel_timer c;
    c.on_complete outcome
  end

let abort c reason = finish c (Aborted { reason; at = Sim.now c.sim })

let send_segment c seg =
  let count = c.tx_count.(seg) in
  if count >= max_segment_transmissions then abort c "segment transmitted too many times"
  else begin
    if count = 0 then c.first_sent.(seg) <- Sim.now c.sim;
    c.tx_count.(seg) <- count + 1;
    c.tx
      {
        Wire.Tcp_segment.conn = c.conn_id;
        flags = Wire.Tcp_segment.Ack;
        seq = seg_start c seg;
        ack = 0;
        payload = seg_len c seg;
      }
  end

let rec arm_timer c =
  cancel_timer c;
  if c.snd_una < c.snd_next && c.state = Established then begin
    let timeout = Rto.current c.rto in
    if timeout > Rto.abort_threshold then abort c "retransmission timeout exceeded 64s"
    else
      c.timer <-
        Some
          (Sim.schedule ~kind:Sim.Kind.tcp_timer c.sim ~delay:timeout (fun () ->
               c.timer <- None;
               on_timeout c))
  end

and on_timeout c =
  (* Go-back-to-one: halve ssthresh relative to flight size, retransmit the
     oldest outstanding segment, and back off the timer. *)
  let flight = float_of_int (c.snd_next - c.snd_una) in
  c.ssthresh <- Float.max (flight /. 2.) (2. *. float_of_int c.mss);
  c.cwnd <- float_of_int c.mss;
  c.dupacks <- 0;
  Rto.backoff c.rto;
  if Rto.current c.rto > Rto.abort_threshold then abort c "retransmission timeout exceeded 64s"
  else begin
    send_segment c (seg_of_byte c c.snd_una);
    arm_timer c
  end

let send_allowed c =
  c.state = Established
  && c.snd_next < c.transfer
  && float_of_int (c.snd_next - c.snd_una) +. float_of_int (seg_len c (seg_of_byte c c.snd_next))
     <= c.cwnd

let pump c =
  let sent = ref false in
  while send_allowed c do
    let seg = seg_of_byte c c.snd_next in
    send_segment c seg;
    if c.state <> Finished then begin
      c.snd_next <- c.snd_next + seg_len c seg;
      sent := true
    end
  done;
  if !sent && c.timer = None then arm_timer c

let send_syn c =
  c.syn_tries <- c.syn_tries + 1;
  c.tx { Wire.Tcp_segment.conn = c.conn_id; flags = Wire.Tcp_segment.Syn; seq = 0; ack = 0; payload = 0 };
  let rec rearm () =
    c.timer <-
      Some
        (Sim.schedule ~kind:Sim.Kind.tcp_timer c.sim ~delay:syn_timeout (fun () ->
             c.timer <- None;
             if c.state = Syn_sent then begin
               if c.syn_tries > max_syn_retransmissions then abort c "connection establishment failed"
               else begin
                 c.syn_tries <- c.syn_tries + 1;
                 c.tx
                   {
                     Wire.Tcp_segment.conn = c.conn_id;
                     flags = Wire.Tcp_segment.Syn;
                     seq = 0;
                     ack = 0;
                     payload = 0;
                   };
                 rearm ()
               end
             end))
  in
  rearm ()

let start c =
  if c.state = Syn_sent && c.syn_tries = 0 then begin
    c.started_at <- Sim.now c.sim;
    send_syn c
  end

let on_new_ack c ack =
  (* RTT sample from the highest newly acked segment, Karn-filtered. *)
  let newly_acked_seg = seg_of_byte c (ack - 1) in
  if c.tx_count.(newly_acked_seg) = 1 then
    Rto.observe c.rto (Sim.now c.sim -. c.first_sent.(newly_acked_seg));
  Rto.reset_backoff c.rto;
  c.snd_una <- ack;
  c.dupacks <- 0;
  (* Congestion window growth: slow start below ssthresh, linear above. *)
  let fmss = float_of_int c.mss in
  if c.cwnd < c.ssthresh then c.cwnd <- c.cwnd +. fmss
  else c.cwnd <- c.cwnd +. (fmss *. fmss /. c.cwnd);
  if c.snd_una >= c.transfer then
    finish c (Completed { duration = Sim.now c.sim -. c.started_at })
  else begin
    arm_timer c;
    pump c
  end

let on_dup_ack c =
  c.dupacks <- c.dupacks + 1;
  if c.dupacks = 3 then begin
    (* Fast retransmit; window halving without Reno's inflation phase. *)
    let flight = float_of_int (c.snd_next - c.snd_una) in
    c.ssthresh <- Float.max (flight /. 2.) (2. *. float_of_int c.mss);
    c.cwnd <- c.ssthresh;
    send_segment c (seg_of_byte c c.snd_una);
    if c.state = Established then arm_timer c
  end

let client_receive c (seg : Wire.Tcp_segment.t) =
  if seg.conn = c.conn_id && c.state <> Finished then begin
    match (c.state, seg.flags) with
    | Syn_sent, Wire.Tcp_segment.Syn_ack ->
        c.state <- Established;
        cancel_timer c;
        pump c
    | Established, Wire.Tcp_segment.Syn_ack ->
        () (* duplicate SYN/ACK from a retransmitted SYN *)
    | Established, Wire.Tcp_segment.Ack ->
        if seg.ack > c.snd_una then on_new_ack c seg.ack
        else if seg.ack = c.snd_una && c.snd_una < c.snd_next then on_dup_ack c
    | _, Wire.Tcp_segment.Rst -> abort c "connection reset"
    | _, (Wire.Tcp_segment.Syn | Wire.Tcp_segment.Fin) -> ()
    | Syn_sent, Wire.Tcp_segment.Ack -> ()
    | Finished, _ -> ()
  end

(* ------------------------------------------------------------------ *)

type server = {
  s_sim : Sim.t;
  s_conn_id : int;
  s_tx : Wire.Tcp_segment.t -> unit;
  s_on_data : (bytes_in_order:int -> unit) option;
  received : (int, int) Hashtbl.t; (* segment start byte -> length *)
  mutable expected : int; (* next in-order byte *)
  mutable got_syn : bool;
}

let create_server ~sim ~conn_id ~tx ?on_data () =
  {
    s_sim = sim;
    s_conn_id = conn_id;
    s_tx = tx;
    s_on_data = on_data;
    received = Hashtbl.create 32;
    expected = 0;
    got_syn = false;
  }

let server_conn_id s = s.s_conn_id
let server_bytes_received s = s.expected

let server_receive s (seg : Wire.Tcp_segment.t) =
  if seg.conn = s.s_conn_id then begin
    match seg.flags with
    | Wire.Tcp_segment.Syn ->
        (* Answer every SYN (duplicates included) so a lost SYN/ACK is
           repaired by the client's SYN retransmission. *)
        s.got_syn <- true;
        s.s_tx
          { Wire.Tcp_segment.conn = s.s_conn_id; flags = Wire.Tcp_segment.Syn_ack; seq = 0; ack = 0; payload = 0 }
    | Wire.Tcp_segment.Ack when seg.payload > 0 && s.got_syn ->
        if seg.seq >= s.expected then Hashtbl.replace s.received seg.seq seg.payload;
        (* Advance over any contiguous run now available. *)
        let rec advance () =
          match Hashtbl.find_opt s.received s.expected with
          | Some len ->
              Hashtbl.remove s.received s.expected;
              s.expected <- s.expected + len;
              advance ()
          | None -> ()
        in
        advance ();
        (match s.s_on_data with Some f -> f ~bytes_in_order:s.expected | None -> ());
        s.s_tx
          {
            Wire.Tcp_segment.conn = s.s_conn_id;
            flags = Wire.Tcp_segment.Ack;
            seq = 0;
            ack = s.expected;
            payload = 0;
          }
    | Wire.Tcp_segment.Ack -> ()
    | Wire.Tcp_segment.Syn_ack | Wire.Tcp_segment.Fin | Wire.Tcp_segment.Rst -> ()
  end
