type discipline = Naive | Lrp

let default_interrupt_s = 3.5e-6

let peak_rate ~interrupt_s ~processing_s = 1. /. (interrupt_s +. processing_s)

let output_rate discipline ~interrupt_s ~processing_s ~input_pps =
  let peak = peak_rate ~interrupt_s ~processing_s in
  if input_pps <= peak then input_pps
  else begin
    match discipline with
    | Lrp ->
        (* LRP demultiplexes early and defers protocol work, so excess
           arrivals are shed for (almost) free and the peak holds. *)
        peak
    | Naive ->
        (* Interrupt handling preempts everything: of each second,
           input*interrupt goes to interrupts; only the remainder completes
           packets.  Output hits zero at 1/interrupt (full livelock). *)
        Float.max 0. ((1. -. (input_pps *. interrupt_s)) /. processing_s)
  end

let default_inputs =
  List.init 41 (fun i -> float_of_int i *. 10_000.) (* 0 .. 400 Kpps *)

let series ?(discipline = Naive) ?(interrupt_s = default_interrupt_s) ?(inputs_pps = default_inputs)
    ~processing_s () =
  List.map
    (fun input_pps -> (input_pps, output_rate discipline ~interrupt_s ~processing_s ~input_pps))
    inputs_pps

let simulate ?(duration = 1.0) discipline ~interrupt_s ~processing_s ~input_pps =
  (* 1 ms slices: arrivals are deterministic at the offered rate; interrupt
     work is served first, remaining CPU does protocol processing from a
     bounded backlog (128 packets, as a NIC ring would hold). *)
  let slice = 1e-3 in
  let slices = int_of_float (duration /. slice) in
  let ring_capacity = 128. in
  let backlog = ref 0. in
  let completed = ref 0. in
  let carry = ref 0. in
  for _ = 1 to slices do
    let arrivals = (input_pps *. slice) +. !carry in
    let whole = floor arrivals in
    carry := arrivals -. whole;
    let admitted, interrupt_work =
      match discipline with
      | Naive ->
          (* Every arrival costs an interrupt whether or not it fits. *)
          (Float.min whole (ring_capacity -. !backlog), whole *. interrupt_s)
      | Lrp ->
          (* Early demux: excess beyond the ring is dropped at (nearly)
             zero cost and protocol work is charged to the class. *)
          let admitted = Float.min whole (ring_capacity -. !backlog) in
          (admitted, admitted *. interrupt_s)
    in
    backlog := !backlog +. admitted;
    let cpu_left = Float.max 0. (slice -. interrupt_work) in
    let processed = Float.min !backlog (cpu_left /. processing_s) in
    backlog := !backlog -. processed;
    completed := !completed +. processed
  done;
  !completed /. duration
