(** The software-router fast path of the paper's Sec. 6 prototype, set up
    so each of Table 1's packet types can be exercised in isolation.

    The prototype used the kernel crypto API's AES for pre-capability
    hashes and SHA-1 for capability hashes; this module runs the same
    constructions from {!Crypto}.  The five operations perform exactly the
    work the paper counts:

    - request: one pre-capability hash (AES);
    - regular with a cached entry: flow lookup, nonce compare, byte/ttl
      update — no crypto;
    - regular without a cached entry: two hashes (recompute pre-capability,
      recompute capability) plus entry creation;
    - renewal with a cached entry: fast-path checks plus one fresh
      pre-capability hash;
    - renewal without a cached entry: two validation hashes plus one fresh
      pre-capability hash.

    Each operation is packaged as a closure whose per-call side effects are
    reset internally, so benchmark harnesses can run them millions of
    times. *)

type t

type op =
  | Legacy_forward
  | Request
  | Regular_cached
  | Regular_uncached
  | Renewal_cached
  | Renewal_uncached

val all_ops : op list
val op_name : op -> string

val create :
  ?hash_precap:(module Crypto.Keyed_hash.S) ->
  ?hash_cap:(module Crypto.Keyed_hash.S) ->
  unit ->
  t
(** Defaults: AES-hash for pre-capabilities and HMAC-SHA1 for capabilities,
    the prototype's pairing. *)

val run : t -> op -> unit
(** Execute one packet's worth of processing for [op]. *)

val runner : t -> op -> unit -> unit
(** [runner t op] is a closure for benchmark harnesses. *)

val calibrate : ?iters:int -> t -> op -> float
(** Rough wall-clock nanoseconds per operation (for feeding the Fig. 12
    model outside the Bechamel harness). *)
