lib/forwarder/livelock.ml: Float List
