lib/forwarder/fastpath.ml: Crypto Hashtbl Int64 Tva Unix Wire
