lib/forwarder/fastpath.mli: Crypto
