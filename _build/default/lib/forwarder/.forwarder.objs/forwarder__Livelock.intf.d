lib/forwarder/livelock.mli:
