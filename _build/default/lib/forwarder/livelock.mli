(** The forwarding-rate model behind Fig. 12.

    The paper's measured curves are dominated by per-packet interrupt
    handling (~3.5 µs) plus the per-type processing cost of Table 1: the
    output rate climbs with the input rate and saturates at
    [1 / (t_interrupt + t_processing)] — 160–280 Kpps depending on packet
    type.  Past saturation a naive kernel path suffers receive livelock
    (interrupts steal cycles from processing that would have completed
    packets), while Lazy Receiver Processing (LRP, the paper's suggested
    remedy) holds the peak by charging each packet class its own
    computation and shedding the expensive excess early. *)

type discipline =
  | Naive  (** interrupts preempt processing: livelock past saturation *)
  | Lrp  (** lazy receiver processing: flat at the peak rate *)

val output_rate :
  discipline -> interrupt_s:float -> processing_s:float -> input_pps:float -> float
(** Closed-form model: packets out per second for a given offered load. *)

val peak_rate : interrupt_s:float -> processing_s:float -> float
(** [1 / (interrupt_s + processing_s)]. *)

val default_interrupt_s : float
(** 3.5 µs, the interrupt penalty the paper measures. *)

val series :
  ?discipline:discipline ->
  ?interrupt_s:float ->
  ?inputs_pps:float list ->
  processing_s:float ->
  unit ->
  (float * float) list
(** (input, output) pairs over the paper's 0–400 Kpps x-range. *)

val simulate :
  ?duration:float ->
  discipline ->
  interrupt_s:float ->
  processing_s:float ->
  input_pps:float ->
  float
(** A small discrete-time CPU simulation (interrupt work has priority over
    protocol work within each 1 ms slice) cross-checking the closed form;
    returns the measured output rate. *)
