(** Stochastic fair queueing (McKenney): hash flows onto a fixed number of
    buckets and fair-queue the buckets.

    The paper (Sec. 3.9) considers SFQ as the alternative to its bounded
    per-path-id / per-destination queues and rejects it because attackers
    who learn the hash can manufacture collisions with a victim's bucket.
    We implement it both as a baseline and to reproduce that ablation: the
    hash is a public multiplicative hash of the flow key, so a test can
    construct colliding flows deliberately. *)

val hash : seed:int -> buckets:int -> int -> int
(** The bucket index SFQ assigns to a flow key — exposed so the collision
    ablation can search for colliding keys. *)

val create :
  ?name:string ->
  ?quantum:int ->
  ?queue_capacity_bytes:int ->
  ?seed:int ->
  buckets:int ->
  flow_key:(Wire.Packet.t -> int) ->
  unit ->
  Qdisc.t
