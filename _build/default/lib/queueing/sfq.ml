let hash ~seed ~buckets key =
  (* Knuth multiplicative hashing, perturbed by the seed; adequate for SFQ
     and trivially invertible enough for the deliberate-collision attack
     the paper warns about. *)
  let h = (key lxor seed) * 2654435761 in
  (h lsr 7) mod buckets |> abs

let create ?(name = "sfq") ?quantum ?queue_capacity_bytes ?(seed = 0) ~buckets ~flow_key () =
  if buckets <= 0 then invalid_arg "Sfq.create: buckets must be positive";
  Drr.create ~name ?quantum ?queue_capacity_bytes ~max_queues:buckets
    ~classify:(fun p -> hash ~seed ~buckets (flow_key p))
    ()
