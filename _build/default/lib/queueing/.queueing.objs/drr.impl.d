lib/queueing/drr.ml: Hashtbl List Qdisc Queue Wire
