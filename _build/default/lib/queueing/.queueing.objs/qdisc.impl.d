lib/queueing/qdisc.ml: Format Wire
