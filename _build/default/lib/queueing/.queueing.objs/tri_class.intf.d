lib/queueing/tri_class.mli: Qdisc Wire
