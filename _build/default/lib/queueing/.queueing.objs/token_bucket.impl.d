lib/queueing/token_bucket.ml: Float Qdisc Wire
