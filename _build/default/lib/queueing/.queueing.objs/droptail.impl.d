lib/queueing/droptail.ml: Qdisc Queue Wire
