lib/queueing/sfq.mli: Qdisc Wire
