lib/queueing/droptail.mli: Qdisc
