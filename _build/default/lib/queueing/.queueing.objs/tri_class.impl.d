lib/queueing/tri_class.ml: Float List Qdisc Wire
