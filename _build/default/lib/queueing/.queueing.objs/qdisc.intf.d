lib/queueing/qdisc.mli: Format Wire
