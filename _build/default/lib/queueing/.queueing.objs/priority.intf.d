lib/queueing/priority.mli: Qdisc Wire
