lib/queueing/drr.mli: Qdisc Wire
