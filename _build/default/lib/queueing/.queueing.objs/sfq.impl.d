lib/queueing/sfq.ml: Drr
