lib/queueing/token_bucket.mli: Qdisc
