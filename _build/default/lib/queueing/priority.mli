(** Strict-priority scheduling over an ordered list of child qdiscs:
    dequeue always serves the first nonempty child.  SIFF's two-class
    forwarding (verified data packets above explorer/legacy traffic) is the
    main user. *)

val create :
  ?name:string ->
  classify:(Wire.Packet.t -> int) ->
  classes:Qdisc.t list ->
  unit ->
  Qdisc.t
(** [classify] returns the index of the child to enqueue into (out-of-range
    indexes clamp to the last, lowest-priority, child).  Raises
    [Invalid_argument] on an empty class list. *)
