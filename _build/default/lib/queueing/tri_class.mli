(** The TVA link scheduler of the paper's Fig. 2.

    Traffic is split into three classes: requests (served first but shaped
    by a rate limiter built into the request child qdisc), regular packets
    with capabilities (the remaining capacity), and legacy traffic (lowest
    priority, FIFO over what is left).  The classifier runs at enqueue time;
    routers have already demoted invalid packets by then, so demoted packets
    simply classify as legacy. *)

type cls =
  | Request
  | Regular
  | Legacy

val create :
  ?name:string ->
  classify:(Wire.Packet.t -> cls) ->
  request:Qdisc.t ->
  regular:Qdisc.t ->
  legacy:Qdisc.t ->
  unit ->
  Qdisc.t

val classify_by_shim : Wire.Packet.t -> cls
(** The standard TVA classifier: request shims are [Request]; valid,
    undemoted regular shims are [Regular]; demoted or shimless packets are
    [Legacy]. *)
