(** Plain FIFO with a byte-capacity bound; arrivals that would overflow are
    dropped (drop-tail).  The legacy-Internet baseline uses this everywhere,
    and it is the building block inside the fair queues. *)

val create : ?name:string -> ?capacity_packets:int -> capacity_bytes:int -> unit -> Qdisc.t
(** Raises [Invalid_argument] on nonpositive capacity.  When
    [capacity_packets] is given the queue is additionally limited by packet
    count — the ns-2 convention, which avoids giving small packets (SYNs)
    an unrealistic admission advantage under overload. *)

val default_capacity : bandwidth_bps:float -> delay:float -> int
(** A conventional buffer sizing: one bandwidth–delay product, floored at
    ~30 full-size packets. *)

val default_capacity_packets : bandwidth_bps:float -> delay:float -> int
(** The same sizing expressed in 1000-byte packets, floored at 50 (the
    ns-2 default queue limit). *)
