module type S = sig
  val name : string
  val mac56 : key:string -> string -> int64
end

let mask56 = 0x00ffffffffffffffL

let int64_of_prefix s =
  (* First 8 bytes of [s], big-endian; [s] must be at least 8 bytes. *)
  let g i = Int64.of_int (Char.code s.[i]) in
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (g i)
  done;
  !acc

module Fast = struct
  let name = "siphash-2-4"

  let mac56 ~key msg =
    (* SipHash wants a 16-byte key; shorter/longer keys are normalized by
       hashing them under a fixed key first. *)
    let key =
      if String.length key = 16 then key
      else
        Siphash.mac_string ~key:"TVA key normali." key
        ^ Siphash.mac_string ~key:"zation constant." key
    in
    Int64.logand (Siphash.mac ~key msg) mask56
end

module Aes = struct
  let name = "aes-hash-mmo"
  let mac56 ~key msg = Int64.logand (int64_of_prefix (Aes_hash.mac ~key msg)) mask56
end

module Sha = struct
  let name = "hmac-sha1"
  let mac56 ~key msg = Int64.logand (int64_of_prefix (Hmac_sha1.mac ~key msg)) mask56
end
