(* SHA-1 per RFC 3174.  Operates on 512-bit blocks with five 32-bit chaining
   variables.  We keep the whole state in Int32 values; OCaml's Int32 ops are
   boxed but this is plenty fast for the simulator and benchmark use here. *)

type ctx = {
  mutable h0 : int32;
  mutable h1 : int32;
  mutable h2 : int32;
  mutable h3 : int32;
  mutable h4 : int32;
  block : bytes; (* 64-byte staging buffer *)
  mutable used : int; (* bytes of [block] currently filled *)
  mutable total : int64; (* total message bytes absorbed *)
  w : int32 array; (* 80-entry message schedule, reused across blocks *)
}

let digest_size = 20

let init () =
  {
    h0 = 0x67452301l;
    h1 = 0xEFCDAB89l;
    h2 = 0x98BADCFEl;
    h3 = 0x10325476l;
    h4 = 0xC3D2E1F0l;
    block = Bytes.create 64;
    used = 0;
    total = 0L;
    w = Array.make 80 0l;
  }

let rol32 x n = Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))

let be32_of_bytes b off =
  let g i = Int32.of_int (Char.code (Bytes.get b (off + i))) in
  Int32.logor
    (Int32.shift_left (g 0) 24)
    (Int32.logor (Int32.shift_left (g 1) 16) (Int32.logor (Int32.shift_left (g 2) 8) (g 3)))

let process_block ctx b off =
  let w = ctx.w in
  for i = 0 to 15 do
    w.(i) <- be32_of_bytes b (off + (4 * i))
  done;
  for i = 16 to 79 do
    w.(i) <- rol32 (Int32.logxor (Int32.logxor w.(i - 3) w.(i - 8)) (Int32.logxor w.(i - 14) w.(i - 16))) 1
  done;
  let a = ref ctx.h0 and b' = ref ctx.h1 and c = ref ctx.h2 and d = ref ctx.h3 and e = ref ctx.h4 in
  for i = 0 to 79 do
    let f, k =
      if i < 20 then
        (Int32.logor (Int32.logand !b' !c) (Int32.logand (Int32.lognot !b') !d), 0x5A827999l)
      else if i < 40 then (Int32.logxor !b' (Int32.logxor !c !d), 0x6ED9EBA1l)
      else if i < 60 then
        ( Int32.logor
            (Int32.logand !b' !c)
            (Int32.logor (Int32.logand !b' !d) (Int32.logand !c !d)),
          0x8F1BBCDCl )
      else (Int32.logxor !b' (Int32.logxor !c !d), 0xCA62C1D6l)
    in
    let temp = Int32.add (Int32.add (Int32.add (rol32 !a 5) f) (Int32.add !e k)) w.(i) in
    e := !d;
    d := !c;
    c := rol32 !b' 30;
    b' := !a;
    a := temp
  done;
  ctx.h0 <- Int32.add ctx.h0 !a;
  ctx.h1 <- Int32.add ctx.h1 !b';
  ctx.h2 <- Int32.add ctx.h2 !c;
  ctx.h3 <- Int32.add ctx.h3 !d;
  ctx.h4 <- Int32.add ctx.h4 !e

let feed_bytes ctx ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  assert (off >= 0 && len >= 0 && off + len <= Bytes.length b);
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref off and remaining = ref len in
  (* Top up a partially filled staging block first. *)
  if ctx.used > 0 then begin
    let take = min !remaining (64 - ctx.used) in
    Bytes.blit b !pos ctx.block ctx.used take;
    ctx.used <- ctx.used + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.used = 64 then begin
      process_block ctx ctx.block 0;
      ctx.used <- 0
    end
  end;
  while !remaining >= 64 do
    process_block ctx b !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit b !pos ctx.block ctx.used !remaining;
    ctx.used <- ctx.used + !remaining
  end

let feed ctx s = feed_bytes ctx (Bytes.unsafe_of_string s)

let copy ctx =
  {
    ctx with
    block = Bytes.copy ctx.block;
    w = Array.make 80 0l;
  }

let put_be32 out off v =
  Bytes.set out off (Char.chr (Int32.to_int (Int32.shift_right_logical v 24) land 0xff));
  Bytes.set out (off + 1) (Char.chr (Int32.to_int (Int32.shift_right_logical v 16) land 0xff));
  Bytes.set out (off + 2) (Char.chr (Int32.to_int (Int32.shift_right_logical v 8) land 0xff));
  Bytes.set out (off + 3) (Char.chr (Int32.to_int v land 0xff))

let get ctx =
  let ctx = copy ctx in
  let bitlen = Int64.mul ctx.total 8L in
  (* Append 0x80, pad with zeros to 56 mod 64, then the 64-bit big-endian
     bit length. *)
  let pad_len =
    let r = (ctx.used + 1 + 8) mod 64 in
    if r = 0 then 1 else 1 + (64 - r)
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set tail (pad_len + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bitlen shift) 0xffL)))
  done;
  (* Absorb the padding without recounting it in [total]. *)
  let saved_total = ctx.total in
  feed_bytes ctx tail;
  ctx.total <- saved_total;
  assert (ctx.used = 0);
  let out = Bytes.create 20 in
  put_be32 out 0 ctx.h0;
  put_be32 out 4 ctx.h1;
  put_be32 out 8 ctx.h2;
  put_be32 out 12 ctx.h3;
  put_be32 out 16 ctx.h4;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  feed ctx s;
  get ctx
