(** AES-based hashing in the Matyas–Meyer–Oseas (MMO) mode, the classic way
    to build a hash from a block cipher (Handbook of Applied Cryptography,
    ch. 9 — the reference the paper cites for its hash functions).

    The paper's prototype computes pre-capabilities with an "AES-hash"; this
    module provides the same construction:

      H_0   = IV
      H_i   = E_{g(H_{i-1})}(m_i) xor m_i
      out   = H_n                      (128 bits)

    with Merkle–Damgård strengthening (0x80 padding plus a 64-bit length
    block). *)

val digest : string -> string
(** [digest msg] is the 16-byte MMO hash of [msg]. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is a keyed hash: the MMO digest of [key || msg] with the
    key block also mixed into the IV.  [key] may be any length; 16 bytes is
    canonical. *)

val digest_size : int
(** 16 bytes. *)
