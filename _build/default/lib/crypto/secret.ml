type t = { master : string }

let rollover_period = 256.
let rotation_period = 128.

let create ~master = { master }

let epoch ~now = int_of_float (floor (now /. rotation_period))

let timestamp ~now = int_of_float (floor now) land 0xff

let secret_of_epoch t e =
  (* Epoch secrets are a keyed hash of the epoch under the master key:
     deterministic, and old secrets are recoverable only via the master. *)
  Siphash.mac_string ~key:"TVA secret deriv" (t.master ^ string_of_int e)
  ^ Siphash.mac_string ~key:"ation epoch key." (t.master ^ string_of_int e)

let issuing_secret t ~now = secret_of_epoch t (epoch ~now)

(* Epoch parity equals the high bit of the timestamps minted during it:
   epochs cover [0,128), [128,256), [256,384), ... so timestamps 0..127
   (high bit 0) come from even epochs and 128..255 from odd ones. *)
let epoch_parity e = e land 1

let validating_secret t ~now ~ts =
  let e_now = epoch ~now in
  let high_bit = (ts lsr 7) land 1 in
  if epoch_parity e_now = high_bit then Some (secret_of_epoch t e_now)
  else if e_now > 0 && epoch_parity (e_now - 1) = high_bit then Some (secret_of_epoch t (e_now - 1))
  else if e_now = 0 then None
  else
    (* Parity alternates every epoch, so one of current/previous always
       matches; this branch is unreachable but kept total. *)
    None
