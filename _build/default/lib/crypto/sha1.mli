(** SHA-1 (RFC 3174), implemented from scratch.

    Used as the paper's second hash function, i.e. the one that turns a
    pre-capability plus [N] and [T] into a full capability (Section 6 of the
    paper uses SHA-1 for this role in the Linux prototype). *)

type ctx
(** Streaming hash context. *)

val init : unit -> ctx

val feed : ctx -> string -> unit
(** [feed ctx s] absorbs all bytes of [s]. *)

val feed_bytes : ctx -> ?off:int -> ?len:int -> bytes -> unit

val get : ctx -> string
(** [get ctx] finalizes a copy of [ctx] and returns the 20-byte digest.
    The context remains usable for further [feed]s. *)

val digest : string -> string
(** One-shot hash: 20-byte digest of the argument. *)

val digest_size : int
(** 20 bytes. *)
