(** HMAC-SHA1 (RFC 2104). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 20-byte HMAC-SHA1 tag of [msg] under [key].
    Keys longer than the 64-byte SHA-1 block are first hashed, as the RFC
    requires. *)

val digest_size : int
(** 20 bytes. *)
