(** Rotating router secrets (paper Section 3.4).

    Each router stamps pre-capabilities with an 8-bit timestamp from a
    modulo-256-second clock and a hash keyed by a slowly changing secret.
    The secret changes at {e twice} the rate of timestamp rollover, i.e.
    every 128 seconds, and the router only accepts the current or the
    previous secret.  The high-order bit of the timestamp tells the
    validator which of the two to try, so validation needs exactly one hash
    even across a rotation. *)

type t

val create : master:string -> t
(** [create ~master] derives all epoch secrets deterministically from
    [master], so that a router restarted with the same master key behaves
    identically (and tests are reproducible). *)

val rollover_period : float
(** 256 s: the timestamp clock period. *)

val rotation_period : float
(** 128 s: how often the secret changes (twice per rollover). *)

val timestamp : now:float -> int
(** The 8-bit router timestamp for wall-clock [now] (seconds). *)

val issuing_secret : t -> now:float -> string
(** The secret a router uses to mint a pre-capability at time [now]. *)

val validating_secret : t -> now:float -> ts:int -> string option
(** [validating_secret t ~now ~ts] is the secret to check a capability whose
    embedded timestamp is [ts], given the validator's clock [now] — selected
    by the high bit of [ts] as the paper describes.  [None] if the implied
    epoch is neither current nor previous (the capability is too old: the
    secret has been retired). *)

val epoch : now:float -> int
(** The rotation epoch index [floor (now / 128)]. *)
