lib/crypto/secret.ml: Siphash
