lib/crypto/aes_hash.ml: Aes128 Buffer Bytes Char Int64 String
