lib/crypto/aes_hash.mli:
