lib/crypto/keyed_hash.mli:
