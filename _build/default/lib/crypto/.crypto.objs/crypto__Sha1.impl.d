lib/crypto/sha1.ml: Array Bytes Char Int32 Int64
