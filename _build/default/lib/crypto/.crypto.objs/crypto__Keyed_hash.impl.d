lib/crypto/keyed_hash.ml: Aes_hash Char Hmac_sha1 Int64 Siphash String
