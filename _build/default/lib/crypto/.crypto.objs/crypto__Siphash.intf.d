lib/crypto/siphash.mli:
