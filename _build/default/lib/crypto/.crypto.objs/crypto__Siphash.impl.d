lib/crypto/siphash.ml: Bytes Char Int64 List String
