lib/crypto/hmac_sha1.mli:
