lib/crypto/secret.mli:
