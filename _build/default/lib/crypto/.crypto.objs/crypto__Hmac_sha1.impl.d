lib/crypto/hmac_sha1.ml: Bytes Char Sha1 String
