(** A common interface over the keyed hashes used to bind capabilities.

    TVA routers need two keyed-hash roles (Fig. 3 of the paper): one that
    mints pre-capabilities from (src, dst, timestamp, router secret), and
    one that folds (pre-capability, N, T) into a full capability.  The
    prototype used AES-hash and SHA-1 for these; the simulator defaults to
    SipHash for speed.  Implementations are interchangeable through this
    signature. *)

module type S = sig
  val name : string

  val mac56 : key:string -> string -> int64
  (** [mac56 ~key msg] is a 56-bit tag (top 8 bits clear), the width of the
      hash field in a 64-bit capability. *)
end

module Fast : S
(** SipHash-2-4 based; the simulation default. *)

module Aes : S
(** AES-hash (MMO) based, as the prototype uses for pre-capabilities. *)

module Sha : S
(** HMAC-SHA1 based, as the prototype uses for full capabilities. *)
