let digest_size = 20
let block_size = 64

let mac ~key msg =
  let key = if String.length key > block_size then Sha1.digest key else key in
  let k = Bytes.make block_size '\000' in
  Bytes.blit_string key 0 k 0 (String.length key);
  let xor_pad pad =
    let b = Bytes.create block_size in
    for i = 0 to block_size - 1 do
      Bytes.set b i (Char.chr (Char.code (Bytes.get k i) lxor pad))
    done;
    Bytes.unsafe_to_string b
  in
  let inner = Sha1.init () in
  Sha1.feed inner (xor_pad 0x36);
  Sha1.feed inner msg;
  let outer = Sha1.init () in
  Sha1.feed outer (xor_pad 0x5c);
  Sha1.feed outer (Sha1.get inner);
  Sha1.get outer
