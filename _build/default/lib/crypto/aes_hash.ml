(* Matyas–Meyer–Oseas over AES-128: the chaining value keys the cipher and
   the message block is both encrypted and xored into the output.  MD
   strengthening (0x80 + 64-bit length) prevents trivial extension of the
   padding. *)

let digest_size = 16

let iv = "TVA aes-hash IV\000"

let pad msg =
  let len = String.length msg in
  let rem = (len + 1 + 8) mod 16 in
  let zeros = if rem = 0 then 0 else 16 - rem in
  let b = Buffer.create (len + 1 + zeros + 8) in
  Buffer.add_string b msg;
  Buffer.add_char b '\x80';
  for _ = 1 to zeros do
    Buffer.add_char b '\000'
  done;
  let bits = Int64.of_int (len * 8) in
  for i = 7 downto 0 do
    Buffer.add_char b (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done;
  Buffer.contents b

let hash_padded padded =
  let n = String.length padded / 16 in
  let h = Bytes.of_string iv in
  let block = Bytes.create 16 in
  for i = 0 to n - 1 do
    let key = Aes128.expand_key (Bytes.to_string h) in
    Bytes.blit_string padded (16 * i) block 0 16;
    Aes128.encrypt_block key block ~src_off:0 h ~dst_off:0;
    for j = 0 to 15 do
      Bytes.set h j (Char.chr (Char.code (Bytes.get h j) lxor Char.code padded.[(16 * i) + j]))
    done
  done;
  Bytes.unsafe_to_string h

let digest msg = hash_padded (pad msg)

let mac ~key msg =
  (* Prefixing the key as the first absorbed block keys every subsequent
     chaining value; MD strengthening covers the combined length. *)
  let keyed = key ^ "\x01" ^ msg in
  digest keyed
