(** AES-128 block cipher (FIPS-197), encryption direction only.

    The paper's Linux prototype computes pre-capabilities with an "AES-hash";
    we provide the block cipher here and the Matyas–Meyer–Oseas hashing mode
    on top of it in {!Aes_hash}.  Decryption is unnecessary for hashing and
    is deliberately not implemented. *)

type key
(** An expanded 128-bit key schedule (11 round keys). *)

val expand_key : string -> key
(** [expand_key k] expands a 16-byte key.  Raises [Invalid_argument] if
    [String.length k <> 16]. *)

val encrypt_block : key -> bytes -> src_off:int -> bytes -> dst_off:int -> unit
(** [encrypt_block key src ~src_off dst ~dst_off] encrypts the 16-byte block
    at [src_off] into [dst] at [dst_off].  [src] and [dst] may be the same
    buffer with the same offset. *)

val encrypt : key -> string -> string
(** Convenience one-shot encryption of a single 16-byte block. *)

val block_size : int
(** 16 bytes. *)
