(** Retransmission-timeout estimation (RFC 6298 smoothing), with the
    paper's evaluation parameters: the base RTO is clamped to ns-2's 0.2 s
    floor and exponential backoff is capped at 64 s — a connection whose
    backed-off RTO would exceed that aborts (paper Sec. 5). *)

type t

val create : unit -> t

val observe : t -> float -> unit
(** Feed one RTT sample (seconds).  Only call for unambiguous samples
    (segments transmitted exactly once — Karn's rule is the caller's job). *)

val base : t -> float
(** Current RTO before backoff: [srtt + 4*rttvar], clamped to >= 0.2 s
    (0.2 s before any sample). *)

val current : t -> float
(** [base * 2^backoffs], uncapped, so the caller can test the 64 s abort
    threshold. *)

val backoff : t -> unit
(** Doubles the timeout (called on each expiry). *)

val reset_backoff : t -> unit
(** Called when new data is acknowledged. *)

val min_rto : float
(** 0.2 s. *)

val abort_threshold : float
(** 64 s: the paper aborts a transfer whose data RTO exceeds this. *)
