(** A compact TCP for the paper's workload: a client pushes a fixed number
    of bytes to a server and the transfer either completes or aborts.

    Connection establishment and abort behaviour follow the evaluation
    setup of Sec. 5 exactly:
    - SYN timeout fixed at 1 s (no exponential backoff), at most
      {!max_syn_retransmissions} retransmissions;
    - data transfer aborts when the backed-off RTO would exceed 64 s or
      any single segment has been transmitted more than
      {!max_segment_transmissions} times.

    Loss recovery is Reno-style: slow start, congestion avoidance, fast
    retransmit on three duplicate ACKs, go-back-to-one on timeout.

    Transport attachment is by callback: the connection emits
    {!Wire.Tcp_segment.t} values through [tx] and is fed incoming segments
    through {!receive}; the scheme layer (TVA, SIFF, plain IP) turns them
    into packets.  This keeps TCP completely independent of the DoS
    protection scheme under test. *)

type outcome =
  | Completed of { duration : float }
  | Aborted of { reason : string; at : float }

type client
type server

val max_syn_retransmissions : int
(** 8 (plus the initial SYN). *)

val max_segment_transmissions : int
(** 10: transmitting the same data segment more often aborts. *)

val create_client :
  sim:Sim.t ->
  conn_id:int ->
  transfer_bytes:int ->
  ?mss:int ->
  tx:(Wire.Tcp_segment.t -> unit) ->
  on_complete:(outcome -> unit) ->
  unit ->
  client
(** [mss] defaults to 1000 bytes (the paper's 20 KB transfers are then 20
    segments).  [on_complete] fires exactly once. *)

val start : client -> unit
(** Sends the initial SYN.  Idempotent only before any segment exchange. *)

val client_receive : client -> Wire.Tcp_segment.t -> unit
val client_conn_id : client -> int
val client_bytes_acked : client -> int
val client_finished : client -> bool

val create_server :
  sim:Sim.t ->
  conn_id:int ->
  tx:(Wire.Tcp_segment.t -> unit) ->
  ?on_data:(bytes_in_order:int -> unit) ->
  unit ->
  server
(** Servers are passive: they answer SYN with SYN/ACK and ack data
    cumulatively.  [on_data] reports in-order delivery progress. *)

val server_receive : server -> Wire.Tcp_segment.t -> unit
val server_conn_id : server -> int
val server_bytes_received : server -> int
