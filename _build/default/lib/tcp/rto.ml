type t = {
  mutable srtt : float;
  mutable rttvar : float;
  mutable has_sample : bool;
  mutable backoffs : int;
}

let min_rto = 0.2 (* ns-2's minrto_: the paper's evaluation platform *)
let abort_threshold = 64.0

let create () = { srtt = 0.; rttvar = 0.; has_sample = false; backoffs = 0 }

let observe t rtt =
  if not t.has_sample then begin
    t.srtt <- rtt;
    t.rttvar <- rtt /. 2.;
    t.has_sample <- true
  end
  else begin
    (* RFC 6298 with alpha = 1/8, beta = 1/4. *)
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. rtt));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. rtt)
  end

let base t =
  if not t.has_sample then min_rto else Float.max min_rto (t.srtt +. (4. *. t.rttvar))

let current t = base t *. (2. ** float_of_int t.backoffs)

let backoff t = t.backoffs <- t.backoffs + 1
let reset_backoff t = t.backoffs <- 0
