lib/tcp/conn.mli: Sim Wire
