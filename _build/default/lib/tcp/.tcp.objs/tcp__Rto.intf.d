lib/tcp/rto.mli:
