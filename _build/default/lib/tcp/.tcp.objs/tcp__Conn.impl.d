lib/tcp/conn.ml: Array Float Hashtbl Rto Sim Wire
