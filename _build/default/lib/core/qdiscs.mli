(** Construction of the TVA link scheduler (paper Fig. 2) for a link of a
    given capacity: requests are DRR-fair-queued by most-recent path
    identifier behind a token bucket capped at [params.request_fraction] of
    the link; regular packets are DRR-fair-queued by destination address
    over at most the flow-cache bound of classes; legacy (and demoted)
    traffic takes a FIFO served last. *)

val make :
  ?regular_key:[ `Destination | `Source ] ->
  params:Params.t ->
  bandwidth_bps:float ->
  unit ->
  Qdisc.t
(** [regular_key] selects the fair-queueing key for authorized traffic:
    per-destination (the paper's default) or per-source (what Sec. 7 warns
    against when sources can be spoofed). *)

val make_sfq_requests : params:Params.t -> bandwidth_bps:float -> buckets:int -> seed:int -> Qdisc.t
(** The Sec. 3.9 ablation variant: requests are stochastically fair-queued
    over [buckets] hash buckets instead of per path identifier, exposing
    the deliberate-collision weakness. *)
