(** Destination authorization policies (paper Sec. 3.3 and 5.4).

    A policy decides, per incoming request, whether to return capabilities
    and with what fine-grained budget (N KB within T seconds).  The paper
    argues two simple policies suffice as extremes:

    - a {e client} accepts requests only from hosts it has itself
      contacted (firewall/NAT-like behaviour);
    - a {e public server} grants every first request a default budget and
      stops renewing senders that misbehave, bounding the damage of a bad
      authorization to one budget. *)

type decision =
  | Granted of { n_kb : int; t_sec : int }
  | Refused

type t

val decide : t -> now:float -> src:Wire.Addr.t -> renewal:bool -> decision

val note_traffic : t -> now:float -> src:Wire.Addr.t -> bytes:int -> demoted:bool -> unit
(** Hosts call this for every arriving data packet, so detectors can watch
    per-source behaviour. *)

val note_outgoing_request : t -> now:float -> dst:Wire.Addr.t -> unit
(** Hosts call this when they request capabilities from [dst] (the client
    policy keys on it). *)

val make :
  ?note_traffic:(now:float -> src:Wire.Addr.t -> bytes:int -> demoted:bool -> unit) ->
  ?note_outgoing_request:(now:float -> dst:Wire.Addr.t -> unit) ->
  decide:(now:float -> src:Wire.Addr.t -> renewal:bool -> decision) ->
  unit ->
  t
(** Build a custom policy (e.g. CAPTCHA- or cookie-informed, per the
    paper's suggestions). *)

val allow_all : ?n_kb:int -> ?t_sec:int -> unit -> t
(** Grants everything, always — what a colluder runs, and a useful default
    for unattacked experiments.  Defaults: the {!Params.default} budget. *)

val refuse_all : unit -> t

val client : ?n_kb:int -> ?t_sec:int -> ?window:float -> unit -> t
(** Accepts a request from [src] only if we sent a request to [src] within
    the last [window] seconds (default 60 s). *)

val server :
  ?n_kb:int ->
  ?t_sec:int ->
  ?suspicious:(Wire.Addr.t -> bool) ->
  ?flood_threshold_bps:float ->
  unit ->
  t
(** The public-server policy: grant every source's first request; refuse
    further grants and renewals to sources that have been blacklisted.
    Blacklisting happens when (a) the [suspicious] oracle flags a source
    that has already consumed one grant (the paper's Sec. 5.4 setup — the
    destination recognizes misbehaviour but only after authorizing once),
    or (b) a source's measured arrival rate exceeds [flood_threshold_bps]
    (default: disabled). *)

val blacklist : t -> Wire.Addr.t -> unit
(** Manually blacklist a source on a [server] policy (no-op for others). *)

val is_blacklisted : t -> Wire.Addr.t -> bool
