lib/core/path_id.ml: Crypto Int64 List Printf Wire
