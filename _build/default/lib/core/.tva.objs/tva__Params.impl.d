lib/core/params.ml:
