lib/core/host.mli: Capability Net Params Policy Rng Wire
