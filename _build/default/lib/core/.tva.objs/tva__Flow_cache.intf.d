lib/core/flow_cache.mli: Wire
