lib/core/router.ml: Capability Crypto Flow_cache Int64 List Net Params Path_id Sim Wire
