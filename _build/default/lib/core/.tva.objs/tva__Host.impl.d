lib/core/host.ml: Capability Crypto Int64 List Net Params Policy Rng Sim Wire
