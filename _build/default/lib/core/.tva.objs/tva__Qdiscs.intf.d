lib/core/qdiscs.mli: Params Qdisc
