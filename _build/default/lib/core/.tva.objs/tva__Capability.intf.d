lib/core/capability.mli: Crypto Format Wire
