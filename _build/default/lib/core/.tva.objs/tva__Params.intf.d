lib/core/params.mli:
