lib/core/flow_cache.ml: Capability Float Hashtbl List Wire
