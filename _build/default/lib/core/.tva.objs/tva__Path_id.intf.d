lib/core/path_id.mli: Wire
