lib/core/policy.ml: Params Stats Wire
