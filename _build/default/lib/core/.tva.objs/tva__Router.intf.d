lib/core/router.mli: Capability Flow_cache Net Params Sim Wire
