lib/core/capability.ml: Buffer Char Crypto Format Int64 Wire
