lib/core/policy.mli: Wire
