lib/core/qdiscs.ml: Droptail Drr Params Path_id Sfq Token_bucket Tri_class Wire
