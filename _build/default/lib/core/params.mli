(** Protocol parameters, gathered in one record so experiments can vary
    them (the paper runs its simulations with requests limited to 1% of
    capacity instead of the 5% architectural default, for example). *)

type t = {
  request_fraction : float;
      (** Fraction of each link's capacity reserved for (and capping)
          request packets.  Paper default 5%; simulations use 1%. *)
  request_burst_bytes : int;
      (** Token-bucket depth for the request limiter. *)
  default_n_kb : int;  (** Default grant size N, in KB (10-bit field). *)
  default_t_sec : int;  (** Default grant validity T, in seconds (6-bit field). *)
  min_rate_bytes_per_sec : float;
      (** The architectural constraint (N/T)_min; with link capacity C it
          bounds flow-cache size to C / (N/T)_min records (Sec. 3.6). *)
  renewal_bytes_threshold : float;
      (** Renew when bytes used exceed this fraction of N. *)
  renewal_time_threshold : float;
      (** Renew when elapsed time exceeds this fraction of T. *)
  mtu : int;
  queue_capacity_bytes : int;  (** Per-class queue depth at routers. *)
  max_path_id_queues : int;  (** Bound on request fair-queue classes. *)
}

val default : t

val flow_cache_entries : t -> link_bps:float -> int
(** C / (N/T)_min, the provisioned number of flow-cache records for a link
    of the given capacity (at least 64). *)
