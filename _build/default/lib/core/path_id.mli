(** Pi-style path identifiers (paper Sec. 3.2).

    A router at the ingress of a trust boundary tags request packets with a
    16-bit value derived from its incoming interface — a pseudo-random hash
    that is constant per interface, so the tag sequence approximates the
    upstream path.  Requests are then fair-queued on the most recent tag. *)

val tag : router_id:int -> interface_id:int -> int
(** The 16-bit tag this router assigns to requests arriving on this
    interface.  Deterministic (same router+interface always yields the same
    tag), pseudo-random across interfaces. *)

val most_recent : Wire.Cap_shim.t -> int
(** The queueing key for a request shim: the last tag pushed, or 0 for an
    untagged request (one that has not yet crossed a trust boundary). *)

val push : Wire.Cap_shim.t -> int -> unit
(** Appends a tag to a request shim; no-op on regular shims. *)
