type entry = {
  e_src : Wire.Addr.t;
  e_dst : Wire.Addr.t;
  mutable nonce : int64;
  mutable n_bytes : int;
  mutable t_sec : int;
  mutable cap_ts : int;
  mutable bytes_used : int;
  mutable ttl_expiry : float;
}

type key = int * int

type t = { table : (key, entry) Hashtbl.t; max_entries : int }

let create ~max_entries () =
  if max_entries <= 0 then invalid_arg "Flow_cache.create: capacity must be positive";
  { table = Hashtbl.create (min max_entries 1024); max_entries }

let key ~src ~dst = (Wire.Addr.to_int src, Wire.Addr.to_int dst)

let size t = Hashtbl.length t.table
let capacity t = t.max_entries

let lookup t ~src ~dst = Hashtbl.find_opt t.table (key ~src ~dst)

let ttl_remaining entry ~now = entry.ttl_expiry -. now

(* The byte->time conversion at the heart of the bound: a packet of L bytes
   under a grant of N bytes / T seconds extends the ttl by L*T/N. *)
let time_value ~bytes ~n_bytes ~t_sec =
  float_of_int bytes *. float_of_int t_sec /. float_of_int n_bytes

let reclaimable entry ~now =
  ttl_remaining entry ~now <= 0. || Capability.expired ~now ~ts:entry.cap_ts ~t_sec:entry.t_sec

let sweep t ~now =
  let victims =
    Hashtbl.fold (fun k e acc -> if reclaimable e ~now then k :: acc else acc) t.table []
  in
  List.iter (Hashtbl.remove t.table) victims;
  List.length victims

type insert_result = Inserted of entry | Cache_full | Over_limit

let insert t ~now ~src ~dst ~nonce ~n_kb ~t_sec ~cap_ts ~packet_bytes =
  let n_bytes = n_kb * 1024 in
  if packet_bytes > n_bytes then Over_limit
  else begin
    let make_room () = if size t >= t.max_entries then ignore (sweep t ~now) in
    make_room ();
    if size t >= t.max_entries then Cache_full
    else begin
      let entry =
        {
          e_src = src;
          e_dst = dst;
          nonce;
          n_bytes;
          t_sec;
          cap_ts;
          bytes_used = packet_bytes;
          ttl_expiry = now +. time_value ~bytes:packet_bytes ~n_bytes ~t_sec;
        }
      in
      Hashtbl.replace t.table (key ~src ~dst) entry;
      Inserted entry
    end
  end

type charge_result = Charged | Byte_limit

let charge entry ~now:_ ~bytes =
  if entry.bytes_used + bytes > entry.n_bytes then Byte_limit
  else begin
    entry.bytes_used <- entry.bytes_used + bytes;
    (* ttl grows by the packet's time value; deliberately no clamping to
       [now] — the 2N bound's proof needs total ttl = bytes * T/N. *)
    entry.ttl_expiry <-
      entry.ttl_expiry +. time_value ~bytes ~n_bytes:entry.n_bytes ~t_sec:entry.t_sec;
    Charged
  end

let renew entry ~now ~nonce ~n_kb ~t_sec ~cap_ts ~packet_bytes =
  let n_bytes = n_kb * 1024 in
  if packet_bytes > n_bytes then Byte_limit
  else begin
    entry.nonce <- nonce;
    entry.n_bytes <- n_bytes;
    entry.t_sec <- t_sec;
    entry.cap_ts <- cap_ts;
    entry.bytes_used <- packet_bytes;
    (* A fresh capability's clock starts now; stale credit from the old
       grant must not carry over. *)
    entry.ttl_expiry <-
      Float.max entry.ttl_expiry now +. time_value ~bytes:packet_bytes ~n_bytes ~t_sec;
    Charged
  end

let remove t entry = Hashtbl.remove t.table (key ~src:entry.e_src ~dst:entry.e_dst)

let iter t f = Hashtbl.iter (fun _ e -> f e) t.table

let clear t = Hashtbl.reset t.table
