type decision = Granted of { n_kb : int; t_sec : int } | Refused

type server_state = {
  blacklisted : unit Wire.Addr.Tbl.t;
  granted_once : unit Wire.Addr.Tbl.t;
  rates : Stats.Rate.Ewma.t Wire.Addr.Tbl.t;
}

type t = {
  decide_fn : now:float -> src:Wire.Addr.t -> renewal:bool -> decision;
  note_traffic_fn : now:float -> src:Wire.Addr.t -> bytes:int -> demoted:bool -> unit;
  note_outgoing_fn : now:float -> dst:Wire.Addr.t -> unit;
  server_state : server_state option;
}

let decide t = t.decide_fn
let note_traffic t = t.note_traffic_fn
let note_outgoing_request t = t.note_outgoing_fn

let default_n = Params.default.Params.default_n_kb
let default_t = Params.default.Params.default_t_sec

let no_traffic ~now:_ ~src:_ ~bytes:_ ~demoted:_ = ()
let no_outgoing ~now:_ ~dst:_ = ()

let make ?(note_traffic = no_traffic) ?(note_outgoing_request = no_outgoing) ~decide () =
  {
    decide_fn = decide;
    note_traffic_fn = note_traffic;
    note_outgoing_fn = note_outgoing_request;
    server_state = None;
  }

let allow_all ?(n_kb = default_n) ?(t_sec = default_t) () =
  make ~decide:(fun ~now:_ ~src:_ ~renewal:_ -> Granted { n_kb; t_sec }) ()

let refuse_all () = make ~decide:(fun ~now:_ ~src:_ ~renewal:_ -> Refused) ()

let client ?(n_kb = default_n) ?(t_sec = default_t) ?(window = 60.) () =
  let contacted : float Wire.Addr.Tbl.t = Wire.Addr.Tbl.create 16 in
  make
    ~decide:(fun ~now ~src ~renewal:_ ->
      match Wire.Addr.Tbl.find_opt contacted src with
      | Some at when now -. at <= window -> Granted { n_kb; t_sec }
      | Some _ | None -> Refused)
    ~note_outgoing_request:(fun ~now ~dst -> Wire.Addr.Tbl.replace contacted dst now)
    ()

let server ?(n_kb = default_n) ?(t_sec = default_t) ?suspicious ?flood_threshold_bps () =
  let st =
    {
      blacklisted = Wire.Addr.Tbl.create 64;
      granted_once = Wire.Addr.Tbl.create 64;
      rates = Wire.Addr.Tbl.create 64;
    }
  in
  let decide ~now:_ ~src ~renewal:_ =
    if Wire.Addr.Tbl.mem st.blacklisted src then Refused
    else begin
      let flagged = match suspicious with None -> false | Some f -> f src in
      if flagged && Wire.Addr.Tbl.mem st.granted_once src then begin
        (* Misbehaviour recognized after the first authorization: stop
           renewing, per Sec. 5.4. *)
        Wire.Addr.Tbl.replace st.blacklisted src ();
        Refused
      end
      else begin
        Wire.Addr.Tbl.replace st.granted_once src ();
        Granted { n_kb; t_sec }
      end
    end
  in
  let note_traffic ~now ~src ~bytes ~demoted:_ =
    match flood_threshold_bps with
    | None -> ()
    | Some threshold ->
        let est =
          match Wire.Addr.Tbl.find_opt st.rates src with
          | Some e -> e
          | None ->
              let e = Stats.Rate.Ewma.create ~tau:1.0 in
              Wire.Addr.Tbl.add st.rates src e;
              e
        in
        Stats.Rate.Ewma.observe est ~now ~bytes;
        if Stats.Rate.Ewma.rate est ~now *. 8. > threshold then
          Wire.Addr.Tbl.replace st.blacklisted src ()
  in
  {
    decide_fn = decide;
    note_traffic_fn = note_traffic;
    note_outgoing_fn = no_outgoing;
    server_state = Some st;
  }

let blacklist t src =
  match t.server_state with
  | None -> ()
  | Some st -> Wire.Addr.Tbl.replace st.blacklisted src ()

let is_blacklisted t src =
  match t.server_state with
  | None -> false
  | Some st -> Wire.Addr.Tbl.mem st.blacklisted src
