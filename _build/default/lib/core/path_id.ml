let tag ~router_id ~interface_id =
  (* A fixed-key SipHash keeps tags stable across runs while spreading
     interfaces across the 16-bit space. *)
  let msg = Printf.sprintf "%d/%d" router_id interface_id in
  Int64.to_int (Crypto.Siphash.mac ~key:"TVA path-id tag." msg) land 0xffff

let most_recent (shim : Wire.Cap_shim.t) =
  match shim.Wire.Cap_shim.kind with
  | Wire.Cap_shim.Request { path_ids; _ } -> begin
      match List.rev path_ids with [] -> 0 | last :: _ -> last
    end
  | Wire.Cap_shim.Regular _ -> 0

let push (shim : Wire.Cap_shim.t) tag =
  match shim.Wire.Cap_shim.kind with
  | Wire.Cap_shim.Request { path_ids; precaps } ->
      shim.Wire.Cap_shim.kind <- Wire.Cap_shim.Request { path_ids = path_ids @ [ tag ]; precaps }
  | Wire.Cap_shim.Regular _ -> ()
