type t = {
  request_fraction : float;
  request_burst_bytes : int;
  default_n_kb : int;
  default_t_sec : int;
  min_rate_bytes_per_sec : float;
  renewal_bytes_threshold : float;
  renewal_time_threshold : float;
  mtu : int;
  queue_capacity_bytes : int;
  max_path_id_queues : int;
}

let default =
  {
    request_fraction = 0.05;
    request_burst_bytes = 4000;
    default_n_kb = 32;
    default_t_sec = 10;
    (* 4 KB / 10 s, the example rate floor from Sec. 3.6. *)
    min_rate_bytes_per_sec = 4096. /. 10.;
    renewal_bytes_threshold = 0.5;
    renewal_time_threshold = 0.5;
    mtu = 1500;
    queue_capacity_bytes = 64 * 1024;
    max_path_id_queues = 1024;
  }

let flow_cache_entries t ~link_bps =
  max 64 (int_of_float (link_bps /. 8. /. t.min_rate_bytes_per_sec))
