(** Pushback / aggregate-based congestion control (Mahajan et al. [16],
    as the TVA paper implements it for comparison: "recursively pushes
    destination-based network filters backwards across the incoming link
    that contributes most of the flood").

    Each controlled router runs a periodic controller.  When an output
    link's drop rate over the last interval exceeds a threshold, the
    router:

    + identifies the aggregate — the destination address suffering the
      most drops;
    + computes a limit for the aggregate that would bring arrivals down to
      the link capacity minus headroom;
    + divides that limit over the incoming links that carry the aggregate
      with a max-min allocation (big senders are clipped first, links
      sending less than their fair share are untouched);
    + pushes the per-link limits upstream: a token-bucket filter is
      installed at the upstream end of each clipped incoming link.

    Filters are refreshed every interval and withdrawn after the aggregate
    has been quiet for [release_after] intervals.  The scheme's known
    failure mode — which Fig. 8 of the TVA paper shows — is that with many
    attackers each incoming link carries a small, user-like share of the
    aggregate, so the max-min clip squeezes legitimate senders as hard as
    attackers. *)

type t

val create :
  ?interval:float ->
  ?drop_threshold:float ->
  ?headroom:float ->
  ?release_after:int ->
  ?max_filters:int ->
  sim:Sim.t ->
  unit ->
  t
(** Defaults: 1 s control interval, 5% drop-rate trigger, 10% capacity
    headroom, release after 3 quiet intervals, at most 50 concurrent
    rate-limit sessions per router (pushback daemons bound this; it is why
    very wide floods overwhelm the defense).  One instance is shared by
    all pushback routers of a network (it owns the qdisc-to-drop-stats
    registry). *)

val make_qdisc : t -> bandwidth_bps:float -> Qdisc.t
(** A FIFO that additionally attributes drops to destination aggregates,
    feeding the controller. *)

val install : t -> Net.node -> unit
(** Attach the plain forwarding handler plus the periodic ACC controller
    to this node.  Call after the topology (links) is built. *)

val active_filters : t -> int
(** Number of per-link rate limiters currently installed (all routers). *)
