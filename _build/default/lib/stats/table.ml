type t = { columns : string list; mutable body : string list list }

let create ~columns = { columns; body = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: row width differs from header";
  t.body <- row :: t.body

let add_rowf t fmt = Printf.ksprintf (fun s -> add_row t (String.split_on_char '\t' s)) fmt

let rows t = List.rev t.body

let render t =
  let all = t.columns :: rows t in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let measure row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  List.iter measure all;
  let render_row row =
    String.concat "  "
      (List.mapi (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ') row)
  in
  let rule = String.concat "--" (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  String.concat "\n" (render_row t.columns :: rule :: List.map render_row (rows t)) ^ "\n"

let quote_csv cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let line row = String.concat "," (List.map quote_csv row) in
  String.concat "\n" (line t.columns :: List.map line (rows t)) ^ "\n"
