type t = { name : string; mutable items : (float * float) list; mutable n : int }

let create ?(name = "") () = { name; items = []; n = 0 }
let name t = t.name

let add t ~time v =
  t.items <- (time, v) :: t.items;
  t.n <- t.n + 1

let length t = t.n

let points t = Array.of_list (List.rev t.items)

let values_in t ~lo ~hi =
  List.rev (List.filter_map (fun (time, v) -> if time >= lo && time < hi then Some v else None) t.items)

let max_value t = List.fold_left (fun acc (_, v) -> Float.max acc v) neg_infinity t.items

let to_csv t =
  let b = Buffer.create (16 * t.n) in
  Buffer.add_string b "time,value\n";
  Array.iter (fun (time, v) -> Buffer.add_string b (Printf.sprintf "%.6f,%.6f\n" time v)) (points t);
  Buffer.contents b

let pp fmt t =
  Format.fprintf fmt "@[<v>%s (%d points)@," t.name t.n;
  Array.iter (fun (time, v) -> Format.fprintf fmt "%8.3f %10.4f@," time v) (points t);
  Format.fprintf fmt "@]"
