module Ewma = struct
  type t = { tau : float; mutable rate : float; mutable last : float }

  let create ~tau = { tau; rate = 0.; last = 0. }

  let observe t ~now ~bytes =
    let dt = now -. t.last in
    if dt <= 0. then
      (* Same-instant arrivals fold straight into the estimate, amortized
         over the time constant. *)
      t.rate <- t.rate +. (float_of_int bytes /. t.tau)
    else begin
      let w = exp (-.dt /. t.tau) in
      (* The burst contributes bytes/dt over the gap, blended by w. *)
      t.rate <- ((1. -. w) *. (float_of_int bytes /. dt)) +. (w *. t.rate);
      t.last <- now
    end

  let rate t ~now =
    let dt = now -. t.last in
    if dt <= 0. then t.rate else t.rate *. exp (-.dt /. t.tau)
end

module Window = struct
  type t = {
    width : float;
    mutable epoch : int; (* index of the interval currently accumulating *)
    mutable current : int; (* bytes in the accumulating interval *)
    mutable previous : int; (* bytes in the last complete interval *)
  }

  let create ~width = { width; epoch = 0; current = 0; previous = 0 }

  let rotate t ~now =
    let e = int_of_float (now /. t.width) in
    if e > t.epoch then begin
      t.previous <- (if e = t.epoch + 1 then t.current else 0);
      t.current <- 0;
      t.epoch <- e
    end

  let observe t ~now ~bytes =
    rotate t ~now;
    t.current <- t.current + bytes

  let rate t ~now =
    rotate t ~now;
    float_of_int t.previous /. t.width
end
