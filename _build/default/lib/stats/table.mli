(** Plain-text and CSV rendering of result tables, so every experiment can
    print rows shaped like the paper's figures. *)

type t

val create : columns:string list -> t
val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats one tab-separated row; split on ['\t']. *)

val render : t -> string
(** Column-aligned text with a header rule. *)

val to_csv : t -> string
val rows : t -> string list list
