lib/stats/timeseries.ml: Array Buffer Float Format List Printf
