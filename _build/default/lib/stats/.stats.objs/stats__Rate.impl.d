lib/stats/rate.ml:
