lib/stats/timeseries.mli: Format
