lib/stats/table.mli:
