lib/stats/rate.mli:
