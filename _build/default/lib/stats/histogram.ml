type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; width = (hi -. lo) /. float_of_int bins; counts = Array.make bins 0; under = 0; over = 0; total = 0 }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = if i >= Array.length t.counts then Array.length t.counts - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total
let bins t = Array.length t.counts

let bin_count t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_count: index out of range";
  t.counts.(i)

let underflow t = t.under
let overflow t = t.over

let bin_bounds t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_bounds: index out of range";
  (t.lo +. (float_of_int i *. t.width), t.lo +. (float_of_int (i + 1) *. t.width))

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q must be in [0,1]";
  if t.total = 0 then nan
  else begin
    let target = q *. float_of_int t.total in
    let acc = ref (float_of_int t.under) in
    if !acc >= target then t.lo
    else begin
      let result = ref t.hi in
      (try
         for i = 0 to Array.length t.counts - 1 do
           let c = float_of_int t.counts.(i) in
           if !acc +. c >= target && c > 0. then begin
             let lo, _ = bin_bounds t i in
             result := lo +. (t.width *. ((target -. !acc) /. c));
             raise Exit
           end;
           acc := !acc +. c
         done
       with Exit -> ());
      !result
    end
  end

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  if t.under > 0 then Format.fprintf fmt "(<%g): %d@," t.lo t.under;
  for i = 0 to Array.length t.counts - 1 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bin_bounds t i in
      Format.fprintf fmt "[%g,%g): %d@," lo hi t.counts.(i)
    end
  done;
  if t.over > 0 then Format.fprintf fmt "(>=%g): %d@," t.hi t.over;
  Format.fprintf fmt "@]"
