type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable mn : float;
  mutable mx : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; mn = infinity; mx = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.mn
let max t = t.mx
let sum t = t.mean *. float_of_int t.n

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2 +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    { n; mean; m2; mn = Float.min a.mn b.mn; mx = Float.max a.mx b.mx }
  end

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t) (stddev t) t.mn t.mx
