(** Traffic-rate estimation.

    Pushback's aggregate detection and the TVA router's accounting both need
    arrival-rate estimates.  [Ewma] is the standard exponentially weighted
    estimator (TSW-style); [Window] counts bytes per fixed interval. *)

module Ewma : sig
  type t

  val create : tau:float -> t
  (** [tau] is the averaging time constant in seconds. *)

  val observe : t -> now:float -> bytes:int -> unit
  (** Record an arrival of [bytes] at virtual time [now]. *)

  val rate : t -> now:float -> float
  (** Estimated rate in bytes/second, decayed to [now]. *)
end

module Window : sig
  type t

  val create : width:float -> t
  val observe : t -> now:float -> bytes:int -> unit
  val rate : t -> now:float -> float
  (** Bytes/second over the window that ended most recently; rotates
      automatically as [now] advances. *)
end
