(** Append-only (time, value) series, the output format of the figure
    reproductions (e.g. Fig. 11's transfer-time-vs-time scatter). *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val add : t -> time:float -> float -> unit
val length : t -> int
val points : t -> (float * float) array
(** In insertion order (we only ever insert in nondecreasing time). *)

val values_in : t -> lo:float -> hi:float -> float list
(** Values with [lo <= time < hi]. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val to_csv : t -> string
(** "time,value\n" rows with a header line. *)

val pp : Format.formatter -> t -> unit
