let default_rotation_period = 128.

type t = {
  rotation : float;
  secret_master : string;
  router_id : int;
  sim : Sim.t;
  mutable dropped_dta : int;
}

let create ?(rotation_period = default_rotation_period) ~secret_master ~router_id ~sim () =
  { rotation = rotation_period; secret_master; router_id; sim; dropped_dta = 0 }

let rotation_period t = t.rotation
let dropped_dta t = t.dropped_dta

let epoch t ~now = int_of_float (floor (now /. t.rotation))

let bits_for t ~epoch ~src ~dst =
  let msg =
    Printf.sprintf "%d|%d|%s%s" t.router_id epoch
      (Wire.Addr.to_wire_string src) (Wire.Addr.to_wire_string dst)
  in
  Int64.to_int (Crypto.Siphash.mac ~key:"SIFF marking key" (t.secret_master ^ msg))
  land ((1 lsl Wire.Siff_marking.bits_per_router) - 1)

let marking_bits t ~now ~src ~dst = bits_for t ~epoch:(epoch t ~now) ~src ~dst

let verify t ~now ~src ~dst ~bits =
  let e = epoch t ~now in
  bits = bits_for t ~epoch:e ~src ~dst || (e > 0 && bits = bits_for t ~epoch:(e - 1) ~src ~dst)

let handler t node ~in_link:_ (p : Wire.Packet.t) =
  let now = Sim.now t.sim in
  match p.Wire.Packet.siff with
  | None -> Net.forward node p (* legacy *)
  | Some m -> begin
      match m.Wire.Siff_marking.flavor with
      | Wire.Siff_marking.Exp ->
          Wire.Siff_marking.add_marking m ~router:t.router_id
            ~bits:(marking_bits t ~now ~src:p.Wire.Packet.src ~dst:p.Wire.Packet.dst);
          Net.forward node p
      | Wire.Siff_marking.Dta -> begin
          match Wire.Siff_marking.marking_of m ~router:t.router_id with
          | Some bits
            when verify t ~now ~src:p.Wire.Packet.src ~dst:p.Wire.Packet.dst ~bits ->
              Net.forward node p
          | Some _ | None ->
              (* SIFF drops unverifiable data packets outright. *)
              t.dropped_dta <- t.dropped_dta + 1
        end
    end

let classify (p : Wire.Packet.t) =
  match p.Wire.Packet.siff with
  | Some { Wire.Siff_marking.flavor = Wire.Siff_marking.Dta; _ } -> 0 (* high priority *)
  | Some { Wire.Siff_marking.flavor = Wire.Siff_marking.Exp; _ } | None -> 1

let make_qdisc ~bandwidth_bps =
  let packets = Droptail.default_capacity_packets ~bandwidth_bps ~delay:0.06 in
  let bytes = Droptail.default_capacity ~bandwidth_bps ~delay:0.06 in
  let high =
    Droptail.create ~name:"siff-dta" ~capacity_packets:packets ~capacity_bytes:bytes ()
  in
  let low =
    Droptail.create ~name:"siff-low" ~capacity_packets:packets ~capacity_bytes:bytes ()
  in
  Priority.create ~name:"siff-link" ~classify ~classes:[ high; low ] ()
