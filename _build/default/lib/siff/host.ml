type dst_state = { mutable markings : (int * int) list option; mutable obtained_at : float }

type t = {
  rotation : float;
  policy : Tva.Policy.t;
  node : Net.node;
  sim : Sim.t;
  addr : Wire.Addr.t;
  auto_reply : bool;
  dests : dst_state Wire.Addr.Tbl.t;
  pending_return : (int * int) list Wire.Addr.Tbl.t;
  mutable on_segment : src:Wire.Addr.t -> Wire.Tcp_segment.t -> unit;
}

let addr t = t.addr
let node t = t.node
let set_segment_handler t f = t.on_segment <- f

let dst_state t dst =
  match Wire.Addr.Tbl.find_opt t.dests dst with
  | Some s -> s
  | None ->
      let s = { markings = None; obtained_at = 0. } in
      Wire.Addr.Tbl.add t.dests dst s;
      s

let usable t s ~now =
  match s.markings with
  | None -> None
  | Some m -> if now -. s.obtained_at <= t.rotation then Some m else None

let markings_for t ~dst =
  let s = dst_state t dst in
  usable t s ~now:(Sim.now t.sim)

let make_shim t ~dst =
  let now = Sim.now t.sim in
  let s = dst_state t dst in
  let shim =
    match usable t s ~now with
    | Some markings -> Wire.Siff_marking.dta ~markings
    | None ->
        Tva.Policy.note_outgoing_request t.policy ~now ~dst;
        Wire.Siff_marking.exp_packet ()
  in
  (match Wire.Addr.Tbl.find_opt t.pending_return dst with
  | Some markings ->
      Wire.Addr.Tbl.remove t.pending_return dst;
      shim.Wire.Siff_marking.returned <- Some markings
  | None -> ());
  shim

let send_body t ~dst body =
  let siff = make_shim t ~dst in
  let p = Wire.Packet.make ~siff ~src:t.addr ~dst ~created:(Sim.now t.sim) body in
  Net.originate t.node p

(* SIFF handshakes are per connection: SYN and SYN/ACK packets are always
   explorers (the TVA paper's point of comparison — SIFF "treats capacity
   requests as legacy traffic", and unlike TVA one authorization does not
   cover later connections between the same hosts). *)
let send_handshake t ~dst body =
  let now = Sim.now t.sim in
  Tva.Policy.note_outgoing_request t.policy ~now ~dst;
  let siff = Wire.Siff_marking.exp_packet () in
  (match Wire.Addr.Tbl.find_opt t.pending_return dst with
  | Some markings ->
      Wire.Addr.Tbl.remove t.pending_return dst;
      siff.Wire.Siff_marking.returned <- Some markings
  | None -> ());
  Net.originate t.node (Wire.Packet.make ~siff ~src:t.addr ~dst ~created:now body)

let send_segment t ~dst seg =
  match seg.Wire.Tcp_segment.flags with
  | Wire.Tcp_segment.Syn | Wire.Tcp_segment.Syn_ack -> send_handshake t ~dst (Wire.Packet.Tcp seg)
  | Wire.Tcp_segment.Ack | Wire.Tcp_segment.Fin | Wire.Tcp_segment.Rst ->
      send_body t ~dst (Wire.Packet.Tcp seg)
let send_raw t ~dst ~bytes = send_body t ~dst (Wire.Packet.Raw bytes)

let send_legacy t ~dst ~bytes =
  let p = Wire.Packet.make ~src:t.addr ~dst ~created:(Sim.now t.sim) (Wire.Packet.Raw bytes) in
  Net.originate t.node p

let handle_packet t _node ~in_link:_ (p : Wire.Packet.t) =
  if Wire.Addr.equal p.Wire.Packet.dst t.addr then begin
    let now = Sim.now t.sim in
    let src = p.Wire.Packet.src in
    (match p.Wire.Packet.siff with
    | None -> ()
    | Some m ->
        (match m.Wire.Siff_marking.flavor with
        | Wire.Siff_marking.Exp -> begin
            match Tva.Policy.decide t.policy ~now ~src ~renewal:false with
            | Tva.Policy.Granted _ ->
                Wire.Addr.Tbl.replace t.pending_return src m.Wire.Siff_marking.markings
            | Tva.Policy.Refused -> ()
          end
        | Wire.Siff_marking.Dta -> ());
        (match m.Wire.Siff_marking.returned with
        | Some [] ->
            (* Explicit refusal: stop using whatever we had. *)
            let s = dst_state t src in
            s.markings <- None
        | Some markings ->
            let s = dst_state t src in
            s.markings <- Some markings;
            s.obtained_at <- now
        | None -> ()));
    Tva.Policy.note_traffic t.policy ~now ~src ~bytes:(Wire.Packet.size p) ~demoted:false;
    (match p.Wire.Packet.body with
    | Wire.Packet.Tcp seg -> t.on_segment ~src seg
    | Wire.Packet.Raw _ -> ());
    match (t.auto_reply, Wire.Addr.Tbl.find_opt t.pending_return src) with
    | true, Some (_ :: _) -> send_body t ~dst:src (Wire.Packet.Raw 64)
    | _, _ -> ()
  end

let create ?(rotation_period = Router.default_rotation_period) ?(auto_reply = false) ~policy ~node
    () =
  let addr =
    match Net.node_addr node with
    | Some a -> a
    | None -> invalid_arg "Siff.Host.create: node has no address"
  in
  let t =
    {
      rotation = rotation_period;
      policy;
      node;
      sim = Net.node_sim node;
      addr;
      auto_reply;
      dests = Wire.Addr.Tbl.create 16;
      pending_return = Wire.Addr.Tbl.create 16;
      on_segment = (fun ~src:_ _ -> ());
    }
  in
  Net.set_handler node (handle_packet t);
  t
