(** SIFF router behaviour, as the TVA paper models it for comparison
    (Sec. 2 and 5):

    - every router stamps explorer (EXP) packets with a short marking —
      {!Wire.Siff_marking.bits_per_router} bits derived from a rotating
      secret and the packet's addresses;
    - EXP packets and legacy traffic share the {e low} priority class
      (SIFF's central weakness: request floods and data floods hit the
      same queue);
    - data (DTA) packets whose marking verifies go to the high-priority
      class; DTA packets that fail verification are dropped;
    - routers keep no per-flow state, so there is no byte limit, no
      per-destination balancing, and revocation only happens when the
      router secret rotates (every [rotation_period] seconds; Fig. 11 uses
      3 s).  A marking is accepted for the current or previous secret
      epoch. *)

type t

val create :
  ?rotation_period:float ->
  secret_master:string ->
  router_id:int ->
  sim:Sim.t ->
  unit ->
  t

val default_rotation_period : float
(** 128 s, matching TVA's secret rotation for the non-Fig.-11 scenarios. *)

val marking_bits : t -> now:float -> src:Wire.Addr.t -> dst:Wire.Addr.t -> int
(** The marking this router would stamp right now (exposed for tests and
    the brute-force ablation). *)

val handler : t -> Net.handler
(** Stamps EXP packets, verifies DTA packets (dropping failures), forwards
    the rest. *)

val make_qdisc : bandwidth_bps:float -> Qdisc.t
(** The two-class priority scheduler: verified DTA above EXP + legacy. *)

val dropped_dta : t -> int
val rotation_period : t -> float
