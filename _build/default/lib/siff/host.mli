(** SIFF host behaviour: explorer/data packet selection on send, marking
    hand-back on receive.  Mirrors {!Tva.Host} so the workload can drive
    both through one interface.

    A sender uses DTA packets while it holds markings younger than the
    rotation period (it cannot know the routers' epoch phase, so it
    refreshes conservatively by sending an explorer once the marking is a
    full period old); otherwise it sends EXP packets, which SIFF forwards
    at legacy priority.  Destinations apply a {!Tva.Policy} to decide
    whether to echo collected markings back. *)

type t

val create :
  ?rotation_period:float ->
  ?auto_reply:bool ->
  policy:Tva.Policy.t ->
  node:Net.node ->
  unit ->
  t
(** Installs itself as the node's handler; the node needs an address.
    [auto_reply] (default false): immediately answer packets that leave
    markings owed to the peer with a small standalone packet (colluders). *)

val addr : t -> Wire.Addr.t
val node : t -> Net.node
val set_segment_handler : t -> (src:Wire.Addr.t -> Wire.Tcp_segment.t -> unit) -> unit
val send_segment : t -> dst:Wire.Addr.t -> Wire.Tcp_segment.t -> unit
val send_raw : t -> dst:Wire.Addr.t -> bytes:int -> unit
val send_legacy : t -> dst:Wire.Addr.t -> bytes:int -> unit

val markings_for : t -> dst:Wire.Addr.t -> (int * int) list option
(** Current usable markings towards [dst] (flooders copy these and keep
    hammering even after the destination stops granting). *)
