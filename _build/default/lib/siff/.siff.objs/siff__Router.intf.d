lib/siff/router.mli: Net Qdisc Sim Wire
