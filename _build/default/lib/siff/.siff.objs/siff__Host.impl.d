lib/siff/host.ml: Net Router Sim Tva Wire
