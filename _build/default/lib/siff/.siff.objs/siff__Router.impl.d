lib/siff/router.ml: Crypto Droptail Int64 Net Printf Priority Sim Wire
