lib/siff/host.mli: Net Tva Wire
