let make_qdisc ~bandwidth_bps =
  Droptail.create ~name:"internet-fifo"
    ~capacity_packets:(Droptail.default_capacity_packets ~bandwidth_bps ~delay:0.06)
    ~capacity_bytes:(Droptail.default_capacity ~bandwidth_bps ~delay:0.06)
    ()

let router_handler node ~in_link:_ p = Net.forward node p

module Host = struct
  type t = {
    node : Net.node;
    sim : Sim.t;
    addr : Wire.Addr.t;
    mutable on_segment : src:Wire.Addr.t -> Wire.Tcp_segment.t -> unit;
  }

  let addr t = t.addr
  let set_segment_handler t f = t.on_segment <- f

  let send_segment t ~dst seg =
    Net.originate t.node
      (Wire.Packet.make ~src:t.addr ~dst ~created:(Sim.now t.sim) (Wire.Packet.Tcp seg))

  let send_raw t ~dst ~bytes =
    Net.originate t.node
      (Wire.Packet.make ~src:t.addr ~dst ~created:(Sim.now t.sim) (Wire.Packet.Raw bytes))

  let handle t _node ~in_link:_ (p : Wire.Packet.t) =
    if Wire.Addr.equal p.Wire.Packet.dst t.addr then begin
      match p.Wire.Packet.body with
      | Wire.Packet.Tcp seg -> t.on_segment ~src:p.Wire.Packet.src seg
      | Wire.Packet.Raw _ -> ()
    end

  let create ~node =
    let addr =
      match Net.node_addr node with
      | Some a -> a
      | None -> invalid_arg "Internet.Host.create: node has no address"
    in
    let t = { node; sim = Net.node_sim node; addr; on_segment = (fun ~src:_ _ -> ()) } in
    Net.set_handler node (handle t);
    t
end
