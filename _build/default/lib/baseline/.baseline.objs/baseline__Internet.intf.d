lib/baseline/internet.mli: Net Qdisc Wire
