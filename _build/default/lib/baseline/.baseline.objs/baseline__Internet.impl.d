lib/baseline/internet.ml: Droptail Net Sim Wire
