(** The legacy Internet baseline: FIFO drop-tail queues everywhere, routers
    that just forward, hosts that exchange bare TCP segments.  All traffic —
    SYNs, data, floods — competes in the same queue, which is exactly the
    behaviour the paper's Fig. 8 "Internet" curves show collapsing. *)

val make_qdisc : bandwidth_bps:float -> Qdisc.t
(** Drop-tail FIFO sized to one bandwidth-delay product (60 ms). *)

val router_handler : Net.handler
(** Plain IP forwarding. *)

module Host : sig
  type t

  val create : node:Net.node -> t
  (** Installs itself as the node's handler; the node needs an address. *)

  val addr : t -> Wire.Addr.t
  val set_segment_handler : t -> (src:Wire.Addr.t -> Wire.Tcp_segment.t -> unit) -> unit
  val send_segment : t -> dst:Wire.Addr.t -> Wire.Tcp_segment.t -> unit
  val send_raw : t -> dst:Wire.Addr.t -> bytes:int -> unit
end
