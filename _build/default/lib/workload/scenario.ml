type point = { n_attackers : int; fraction_completed : float; avg_transfer_time : float }

type series = { scheme : string; points : point list }

let default_attacker_counts = [ 1; 2; 5; 10; 20; 40; 60; 80; 100 ]

let sim_params = { Tva.Params.default with Tva.Params.request_fraction = 0.01 }

let schemes =
  [
    ("internet", Scheme.internet ());
    ("siff", Scheme.siff ());
    ("pushback", Scheme.pushback ());
    ("tva", Scheme.tva ~params:sim_params ());
  ]

let attack_rate_bps = 1e6 (* each attacker floods at one legitimate-user rate *)

let flood_sweep ?(schemes = schemes) ?(attacker_counts = default_attacker_counts)
    ?(base = Experiment.default) ~attack () =
  List.map
    (fun (name, factory) ->
      let points =
        List.map
          (fun n ->
            let cfg =
              {
                base with
                Experiment.scheme = factory;
                n_attackers = n;
                attack = attack ~rate_bps:attack_rate_bps;
              }
            in
            let r = Experiment.run cfg in
            {
              n_attackers = n;
              fraction_completed = r.Experiment.fraction_completed;
              avg_transfer_time = r.Experiment.avg_transfer_time;
            })
          attacker_counts
      in
      { scheme = name; points })
    schemes

let fig8 ?attacker_counts ?base () =
  flood_sweep ?attacker_counts ?base
    ~attack:(fun ~rate_bps -> Experiment.Legacy_flood { rate_bps })
    ()

let fig9 ?attacker_counts ?base () =
  flood_sweep ?attacker_counts ?base
    ~attack:(fun ~rate_bps -> Experiment.Request_flood { rate_bps })
    ()

let fig10 ?attacker_counts ?base () =
  flood_sweep ?attacker_counts ?base
    ~attack:(fun ~rate_bps -> Experiment.Authorized_flood { rate_bps })
    ()

type fig11_run = { label : string; timeline : Stats.Timeseries.t }

let fig11 ?(base = Experiment.default) ?(duration = 60.) () =
  let siff_rotation = 3.0 in
  let runs =
    [
      ("tva/all-at-once", Scheme.tva ~params:sim_params (), 1);
      ("tva/10-at-a-time", Scheme.tva ~params:sim_params (), 10);
      ("siff/all-at-once", Scheme.siff ~rotation_period:siff_rotation (), 1);
      ("siff/10-at-a-time", Scheme.siff ~rotation_period:siff_rotation (), 10);
    ]
  in
  List.map
    (fun (label, factory, groups) ->
      let cfg =
        {
          base with
          Experiment.scheme = factory;
          n_attackers = 100;
          max_time = duration;
          transfers_per_user = max_int;
          attack =
            Experiment.Imprecise_flood
              { rate_bps = attack_rate_bps; groups; group_interval = siff_rotation; start_at = 10. };
        }
      in
      let r = Experiment.run cfg in
      { label; timeline = Metrics.timeline r.Experiment.metrics })
    runs

let render series_list =
  let table =
    Stats.Table.create ~columns:[ "attackers"; "scheme"; "fraction_completed"; "avg_time_s" ]
  in
  let counts =
    match series_list with [] -> [] | s :: _ -> List.map (fun p -> p.n_attackers) s.points
  in
  List.iter
    (fun n ->
      List.iter
        (fun s ->
          match List.find_opt (fun p -> p.n_attackers = n) s.points with
          | None -> ()
          | Some p ->
              Stats.Table.add_row table
                [
                  string_of_int n;
                  s.scheme;
                  Printf.sprintf "%.3f" p.fraction_completed;
                  (if Float.is_nan p.avg_transfer_time then "-"
                   else Printf.sprintf "%.3f" p.avg_transfer_time);
                ])
        series_list)
    counts;
  table

let render_fig11 runs ~bins =
  let horizon =
    List.fold_left
      (fun acc r ->
        Array.fold_left (fun acc (time, _) -> Float.max acc time) acc
          (Stats.Timeseries.points r.timeline))
      0. runs
  in
  let nbins = int_of_float (ceil (horizon /. bins)) in
  let table =
    Stats.Table.create ~columns:("time_s" :: List.map (fun r -> r.label) runs)
  in
  for i = 0 to nbins - 1 do
    let lo = float_of_int i *. bins and hi = float_of_int (i + 1) *. bins in
    let cells =
      List.map
        (fun r ->
          match Stats.Timeseries.values_in r.timeline ~lo ~hi with
          | [] -> "-"
          | vs -> Printf.sprintf "%.2f" (List.fold_left Float.max neg_infinity vs))
        runs
    in
    Stats.Table.add_row table (Printf.sprintf "%.0f" lo :: cells)
  done;
  table
