lib/workload/agents.ml: Hashtbl Metrics Rng Scheme Sim Tcp Wire
