lib/workload/agents.mli: Metrics Scheme Sim Wire
