lib/workload/ablation.ml: Agents Array Crypto Experiment Float Int64 List Metrics Net Printf Rng Scenario Scheme Sim Stats Topology Tva Wire
