lib/workload/experiment.mli: Metrics Scheme Wire
