lib/workload/scheme.ml: Baseline Int64 Net Pushback Qdisc Rng Siff Sim Tva Wire
