lib/workload/experiment.ml: Agents Array List Metrics Net Scheme Sim Topology Tva Wire
