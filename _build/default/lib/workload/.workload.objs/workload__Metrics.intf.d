lib/workload/metrics.mli: Stats Tcp
