lib/workload/ablation.mli: Experiment Stats
