lib/workload/scheme.mli: Net Qdisc Sim Tva Wire
