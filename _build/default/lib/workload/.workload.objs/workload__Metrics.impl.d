lib/workload/metrics.ml: Array Stats Tcp
