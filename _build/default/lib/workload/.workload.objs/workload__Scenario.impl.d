lib/workload/scenario.ml: Array Experiment Float List Metrics Printf Scheme Stats Tva
