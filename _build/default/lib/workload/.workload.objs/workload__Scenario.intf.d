lib/workload/scenario.mli: Experiment Scheme Stats Tva
