module Writer = struct
  type t = { buf : Buffer.t; mutable acc : int; mutable acc_bits : int; mutable total : int }

  let create () = { buf = Buffer.create 32; acc = 0; acc_bits = 0; total = 0 }

  let flush_full_bytes t =
    while t.acc_bits >= 8 do
      let shift = t.acc_bits - 8 in
      Buffer.add_char t.buf (Char.chr ((t.acc lsr shift) land 0xff));
      t.acc <- t.acc land ((1 lsl shift) - 1);
      t.acc_bits <- shift
    done

  let put t ~bits v =
    if bits < 1 || bits > 62 then invalid_arg "Bitbuf.put: bits must be in 1..62";
    if v < 0 || (bits < 62 && v lsr bits <> 0) then invalid_arg "Bitbuf.put: value does not fit";
    (* Feed in chunks of at most 8 bits to keep the accumulator small. *)
    let remaining = ref bits in
    while !remaining > 0 do
      let take = min 8 !remaining in
      let chunk = (v lsr (!remaining - take)) land ((1 lsl take) - 1) in
      t.acc <- (t.acc lsl take) lor chunk;
      t.acc_bits <- t.acc_bits + take;
      t.total <- t.total + take;
      remaining := !remaining - take;
      flush_full_bytes t
    done

  let put64 t ~bits v =
    if bits < 1 || bits > 64 then invalid_arg "Bitbuf.put64: bits must be in 1..64";
    if bits = 64 then begin
      put t ~bits:32 (Int64.to_int (Int64.shift_right_logical v 32) land 0xffffffff);
      put t ~bits:32 (Int64.to_int v land 0xffffffff)
    end
    else begin
      if Int64.shift_right_logical v bits <> 0L then
        invalid_arg "Bitbuf.put64: value does not fit";
      if bits <= 32 then put t ~bits (Int64.to_int v land ((1 lsl bits) - 1))
      else begin
        put t ~bits:(bits - 32) (Int64.to_int (Int64.shift_right_logical v 32) land ((1 lsl (bits - 32)) - 1));
        put t ~bits:32 (Int64.to_int v land 0xffffffff)
      end
    end

  let bit_length t = t.total

  let contents t =
    let s = Buffer.contents t.buf in
    if t.acc_bits = 0 then s
    else s ^ String.make 1 (Char.chr ((t.acc lsl (8 - t.acc_bits)) land 0xff))
end

module Reader = struct
  type t = { data : string; mutable bit : int }

  exception Truncated

  let create data = { data; bit = 0 }

  let get t ~bits =
    if bits < 1 || bits > 62 then invalid_arg "Bitbuf.get: bits must be in 1..62";
    if t.bit + bits > 8 * String.length t.data then raise Truncated;
    let v = ref 0 in
    for _ = 1 to bits do
      let byte = Char.code t.data.[t.bit / 8] in
      let b = (byte lsr (7 - (t.bit mod 8))) land 1 in
      v := (!v lsl 1) lor b;
      t.bit <- t.bit + 1
    done;
    !v

  let get64 t ~bits =
    if bits < 1 || bits > 64 then invalid_arg "Bitbuf.get64: bits must be in 1..64";
    if bits <= 32 then Int64.of_int (get t ~bits)
    else
      let hi = get t ~bits:(bits - 32) in
      let lo = get t ~bits:32 in
      Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

  let bits_left t = (8 * String.length t.data) - t.bit
  let byte_pos t = (t.bit + 7) / 8
end
