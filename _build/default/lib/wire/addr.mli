(** Network addresses.  The simulator uses small integer addresses; the
    capability crypto binds src/dst addresses into hashes via
    {!to_wire_string}, which renders them as 4 bytes like an IPv4 address. *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] for negatives or values above 2^32 - 1. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_wire_string : t -> string
(** 4 big-endian bytes, the form fed into capability hashes. *)

val pp : Format.formatter -> t -> unit

val broadcast : t
(** A reserved address never assigned to a node. *)

module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
