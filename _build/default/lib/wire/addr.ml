type t = int

let max_addr = 0xffffffff

let of_int i =
  if i < 0 || i > max_addr then invalid_arg "Addr.of_int: address out of 32-bit range";
  i

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t

let to_wire_string t =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((t lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((t lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((t lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (t land 0xff));
  Bytes.unsafe_to_string b

let pp fmt t =
  Format.fprintf fmt "%d.%d.%d.%d" ((t lsr 24) land 0xff) ((t lsr 16) land 0xff)
    ((t lsr 8) land 0xff) (t land 0xff)

let broadcast = max_addr

module Map = Map.Make (Int)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
