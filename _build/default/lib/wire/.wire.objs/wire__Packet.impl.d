lib/wire/packet.ml: Addr Cap_shim Format Siff_marking Tcp_segment
