lib/wire/tcp_segment.mli: Format
