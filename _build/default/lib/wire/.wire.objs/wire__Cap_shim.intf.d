lib/wire/cap_shim.mli: Format
