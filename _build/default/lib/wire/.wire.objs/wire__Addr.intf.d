lib/wire/addr.mli: Format Hashtbl Map
