lib/wire/siff_marking.ml: List
