lib/wire/tcp_segment.ml: Format
