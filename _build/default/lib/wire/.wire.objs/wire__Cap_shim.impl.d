lib/wire/cap_shim.ml: Bitbuf Format Int64 List Printf String
