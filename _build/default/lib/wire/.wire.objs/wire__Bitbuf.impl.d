lib/wire/bitbuf.ml: Buffer Char Int64 String
