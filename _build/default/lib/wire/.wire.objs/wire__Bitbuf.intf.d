lib/wire/bitbuf.mli:
