lib/wire/addr.ml: Bytes Char Format Hashtbl Int Map
