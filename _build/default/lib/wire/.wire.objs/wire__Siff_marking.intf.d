lib/wire/siff_marking.mli:
