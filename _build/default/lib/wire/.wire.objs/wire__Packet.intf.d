lib/wire/packet.mli: Addr Cap_shim Format Siff_marking Tcp_segment
