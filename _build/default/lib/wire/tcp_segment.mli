(** TCP segment headers as carried by simulator packets.  Only the fields
    the simplified TCP state machine needs: one flag kind per segment,
    byte-granularity sequence/ack numbers, and a connection id standing in
    for the port pair. *)

type flags =
  | Syn
  | Syn_ack
  | Ack (* pure ack or data (payload > 0) in the established state *)
  | Fin
  | Rst

type t = {
  conn : int; (* connection identifier (the "port pair") *)
  flags : flags;
  seq : int; (* first payload byte's sequence number *)
  ack : int; (* next byte expected from the peer *)
  payload : int; (* payload length in bytes *)
}

val header_size : int
(** 40 bytes of TCP/IP header, as the paper's packet-size arithmetic uses. *)

val wire_size : t -> int
(** [header_size + payload]. *)

val pp : Format.formatter -> t -> unit
