type flags = Syn | Syn_ack | Ack | Fin | Rst

type t = { conn : int; flags : flags; seq : int; ack : int; payload : int }

let header_size = 40

let wire_size t = header_size + t.payload

let flags_to_string = function
  | Syn -> "SYN"
  | Syn_ack -> "SYN/ACK"
  | Ack -> "ACK"
  | Fin -> "FIN"
  | Rst -> "RST"

let pp fmt t =
  Format.fprintf fmt "%s conn=%d seq=%d ack=%d len=%d" (flags_to_string t.flags) t.conn t.seq
    t.ack t.payload
