(** Big-endian bit-level buffers for the capability header codec (the
    paper's Fig. 5 fields are 4-, 6-, 10-, 16-, 48- and 64-bit wide, so a
    byte-oriented writer is not enough). *)

module Writer : sig
  type t

  val create : unit -> t

  val put : t -> bits:int -> int -> unit
  (** [put w ~bits v] appends the low [bits] (1–62) of nonnegative [v],
      most significant bit first.  Raises [Invalid_argument] if [v] does not
      fit. *)

  val put64 : t -> bits:int -> int64 -> unit
  (** Same for up to 64 bits. *)

  val bit_length : t -> int

  val contents : t -> string
  (** Zero-padded to a whole number of bytes. *)
end

module Reader : sig
  type t

  exception Truncated

  val create : string -> t
  val get : t -> bits:int -> int
  (** Reads 1–62 bits, MSB first.  Raises {!Truncated} past the end. *)

  val get64 : t -> bits:int -> int64
  val bits_left : t -> int
  val byte_pos : t -> int
  (** Bytes fully or partially consumed so far. *)
end
