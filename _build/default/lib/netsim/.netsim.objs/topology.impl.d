lib/netsim/topology.ml: Array Net Printf Wire
