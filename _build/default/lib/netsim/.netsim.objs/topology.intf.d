lib/netsim/topology.mli: Net Qdisc Sim Wire
