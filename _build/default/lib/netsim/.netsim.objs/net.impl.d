lib/netsim/net.ml: Array Float Fmt Hashtbl List Qdisc Queue Sim Wire
