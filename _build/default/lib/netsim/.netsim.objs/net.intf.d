lib/netsim/net.mli: Qdisc Sim Wire
