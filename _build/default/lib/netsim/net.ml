type t = {
  sim : Sim.t;
  mutable node_list : node list; (* reverse creation order *)
  mutable link_list : link list;
  mutable next_node_id : int;
  mutable next_link_id : int;
  by_addr : node Wire.Addr.Tbl.t;
  mutable trace : (event -> unit) option;
}

and node = {
  id : int;
  name : string;
  net : t;
  addr : Wire.Addr.t option;
  mutable handler : handler;
  mutable out_links : link list; (* reverse creation order *)
  mutable in_links : link list;
  routes : (int, link) Hashtbl.t; (* destination address -> next hop *)
}

and handler = node -> in_link:link option -> Wire.Packet.t -> unit

and link = {
  lid : int;
  src : node;
  dst : node;
  bandwidth : float;
  delay : float;
  qdisc : Qdisc.t;
  mutable busy : bool;
  mutable poll : Sim.handle option;
  mutable limiter : (Wire.Packet.t -> bool) option;
  mutable tx_packets : int;
  mutable tx_bytes : int;
}

and event =
  | Queue_drop of link * Wire.Packet.t
  | Hops_exceeded of node * Wire.Packet.t
  | No_route of node * Wire.Packet.t
  | Transmit of link * Wire.Packet.t
  | Deliver of node * Wire.Packet.t

let create sim =
  {
    sim;
    node_list = [];
    link_list = [];
    next_node_id = 0;
    next_link_id = 0;
    by_addr = Wire.Addr.Tbl.create 64;
    trace = None;
  }

let sim t = t.sim
let now t = Sim.now t.sim
let set_trace t hook = t.trace <- hook

let emit t ev = match t.trace with None -> () | Some hook -> hook ev

let add_node ?addr ~name t handler =
  (match addr with
  | Some a when Wire.Addr.Tbl.mem t.by_addr a ->
      invalid_arg (Fmt.str "Net.add_node: duplicate address %a" Wire.Addr.pp a)
  | _ -> ());
  let node =
    {
      id = t.next_node_id;
      name;
      net = t;
      addr;
      handler;
      out_links = [];
      in_links = [];
      routes = Hashtbl.create 16;
    }
  in
  t.next_node_id <- t.next_node_id + 1;
  t.node_list <- node :: t.node_list;
  (match addr with Some a -> Wire.Addr.Tbl.add t.by_addr a node | None -> ());
  node

let set_handler node h = node.handler <- h
let node_sim node = node.net.sim
let node_name node = node.name
let node_addr node = node.addr
let node_id node = node.id

let link_oneway t ~src ~dst ~bandwidth_bps ~delay ~qdisc =
  if bandwidth_bps <= 0. then invalid_arg "Net.link_oneway: bandwidth must be positive";
  if delay < 0. then invalid_arg "Net.link_oneway: delay must be nonnegative";
  let link =
    {
      lid = t.next_link_id;
      src;
      dst;
      bandwidth = bandwidth_bps;
      delay;
      qdisc;
      busy = false;
      poll = None;
      limiter = None;
      tx_packets = 0;
      tx_bytes = 0;
    }
  in
  t.next_link_id <- t.next_link_id + 1;
  t.link_list <- link :: t.link_list;
  src.out_links <- link :: src.out_links;
  dst.in_links <- link :: dst.in_links;
  link

let duplex t a b ~bandwidth_bps ~delay ~qdisc =
  let ab = link_oneway t ~src:a ~dst:b ~bandwidth_bps ~delay ~qdisc:(qdisc ()) in
  let ba = link_oneway t ~src:b ~dst:a ~bandwidth_bps ~delay ~qdisc:(qdisc ()) in
  (ab, ba)

(* The transmitter: serialize the head packet, then propagate.  [kick]
   starts service if the link is idle; when the qdisc is unready it arms a
   single poll timer at [next_ready]. *)
let rec kick link =
  if not link.busy then begin
    let net = link.src.net in
    let time = Sim.now net.sim in
    (match link.poll with
    | Some h ->
        Sim.cancel h;
        link.poll <- None
    | None -> ());
    match link.qdisc.Qdisc.dequeue ~now:time with
    | Some p ->
        link.busy <- true;
        link.tx_packets <- link.tx_packets + 1;
        link.tx_bytes <- link.tx_bytes + Wire.Packet.size p;
        emit net (Transmit (link, p));
        let tx_time = float_of_int (Wire.Packet.size p) *. 8. /. link.bandwidth in
        ignore
          (Sim.schedule net.sim ~delay:tx_time (fun () ->
               link.busy <- false;
               ignore
                 (Sim.schedule net.sim ~delay:link.delay (fun () ->
                      emit net (Deliver (link.dst, p));
                      link.dst.handler link.dst ~in_link:(Some link) p));
               kick link))
    | None -> begin
        match link.qdisc.Qdisc.next_ready ~now:time with
        | None -> ()
        | Some at ->
            let delay = Float.max 0. (at -. time) in
            (* Never arm a zero-delay self-poll after an empty dequeue: the
               qdisc is momentarily unservable, so wait a token tick. *)
            let delay = if delay <= 0. then 1e-6 else delay in
            link.poll <-
              Some
                (Sim.schedule net.sim ~delay (fun () ->
                     link.poll <- None;
                     kick link))
      end
  end

let enqueue_on link p =
  let net = link.src.net in
  let admitted = match link.limiter with None -> true | Some f -> f p in
  if not admitted then begin
    link.qdisc.Qdisc.stats.Qdisc.dropped <- link.qdisc.Qdisc.stats.Qdisc.dropped + 1;
    link.qdisc.Qdisc.stats.Qdisc.bytes_dropped <-
      link.qdisc.Qdisc.stats.Qdisc.bytes_dropped + Wire.Packet.size p;
    emit net (Queue_drop (link, p))
  end
  else if link.qdisc.Qdisc.enqueue ~now:(Sim.now net.sim) p then kick link
  else emit net (Queue_drop (link, p))

let charge_hop node p =
  if p.Wire.Packet.hops <= 0 then begin
    emit node.net (Hops_exceeded (node, p));
    false
  end
  else begin
    p.Wire.Packet.hops <- p.Wire.Packet.hops - 1;
    true
  end

let forward_on node link p =
  assert (link.src == node);
  if charge_hop node p then enqueue_on link p

let route_for node addr = Hashtbl.find_opt node.routes (Wire.Addr.to_int addr)

let forward node p =
  if charge_hop node p then begin
    match route_for node p.Wire.Packet.dst with
    | None -> emit node.net (No_route (node, p))
    | Some link -> enqueue_on link p
  end

let originate node p = forward node p

(* Shortest-path routing by BFS from every node over its out-links; ties
   resolve to the earliest-created link, which makes routes deterministic. *)
let compute_routes t =
  let nodes = List.rev t.node_list in
  let n = t.next_node_id in
  List.iter (fun node -> Hashtbl.reset node.routes) nodes;
  let run_bfs source =
    let dist = Array.make n max_int in
    let first_hop : link option array = Array.make n None in
    dist.(source.id) <- 0;
    let frontier = Queue.create () in
    Queue.push source frontier;
    while not (Queue.is_empty frontier) do
      let u = Queue.pop frontier in
      let hops_u = dist.(u.id) in
      List.iter
        (fun link ->
          let v = link.dst in
          if dist.(v.id) = max_int then begin
            dist.(v.id) <- hops_u + 1;
            first_hop.(v.id) <- (if u.id = source.id then Some link else first_hop.(u.id));
            Queue.push v frontier
          end)
        (List.rev u.out_links)
    done;
    List.iter
      (fun target ->
        match (target.addr, first_hop.(target.id)) with
        | Some addr, Some link -> Hashtbl.replace source.routes (Wire.Addr.to_int addr) link
        | _, _ -> ())
      nodes
  in
  List.iter run_bfs nodes

let links_into node = List.rev node.in_links
let links_out_of node = List.rev node.out_links
let link_id link = link.lid
let link_src link = link.src
let link_dst link = link.dst
let link_qdisc link = link.qdisc
let link_bandwidth link = link.bandwidth
let link_delay link = link.delay
let link_tx_packets link = link.tx_packets
let link_tx_bytes link = link.tx_bytes
let link_set_limiter link f = link.limiter <- f

let nodes t = List.rev t.node_list
let find_node_by_addr t addr = Wire.Addr.Tbl.find_opt t.by_addr addr
