(** Canned topologies for the paper's experiments.

    {!dumbbell} is Fig. 7: 10 legitimate users and a variable number of
    attackers on one side of a 10 Mb/s, 10 ms bottleneck; the destination
    (and optionally a colluder) on the other side.  Every access link is
    10 ms, giving the paper's 60 ms RTT.  Handlers are installed separately
    by the protocol/agent layers; nodes start with a sink handler. *)

type t = {
  net : Net.t;
  left : Net.node; (* bottleneck ingress router *)
  right : Net.node; (* bottleneck egress router *)
  users : Net.node array;
  attackers : Net.node array;
  destination : Net.node;
  colluder : Net.node option;
  bottleneck : Net.link; (* left -> right, the congested direction *)
  bottleneck_reverse : Net.link;
}

val user_addr : int -> Wire.Addr.t
val attacker_addr : int -> Wire.Addr.t
val destination_addr : Wire.Addr.t
val colluder_addr : Wire.Addr.t

val dumbbell :
  ?bottleneck_bps:float ->
  ?bottleneck_delay:float ->
  ?access_bps:float ->
  ?access_delay:float ->
  ?n_users:int ->
  ?with_colluder:bool ->
  n_attackers:int ->
  make_qdisc:(bandwidth_bps:float -> Qdisc.t) ->
  Sim.t ->
  t
(** Defaults: 10 Mb/s / 10 ms bottleneck, 10 Mb/s / 10 ms access links,
    10 users, no colluder.  [make_qdisc] builds the queue for every
    unidirectional link (rate limits inside schemes are fractions of the
    given bandwidth).  Routes are computed before returning. *)

type chain = {
  chain_net : Net.t;
  chain_routers : Net.node array;
  chain_source : Net.node;
  chain_attacker : Net.node;
  chain_destination : Net.node;
}

val chain_source_addr : Wire.Addr.t
val chain_attacker_addr : Wire.Addr.t
val chain_destination_addr : Wire.Addr.t

val chain :
  ?hops:int ->
  ?bandwidth_bps:float ->
  ?delay:float ->
  ?attacker_entry:int ->
  make_qdisc:(bandwidth_bps:float -> Qdisc.t) ->
  Sim.t ->
  chain
(** A linear chain of [hops] routers with the source on router 0, the
    destination past the last router, and an attacker joining at router
    [attacker_entry].  Used by the incremental-deployment example: upgrade
    a prefix/suffix of the routers and observe attack localization. *)
