lib/engine/rng.ml: Bytes Char Int64
