lib/engine/rng.mli:
