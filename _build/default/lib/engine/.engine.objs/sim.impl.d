lib/engine/sim.ml: Array Printf Rng
