(* Binary min-heap of events keyed by (time, seq).  The sequence number
   breaks ties in scheduling order so that behaviour never depends on heap
   internals.  Cancellation marks the event and lets the heap pop it lazily,
   which keeps cancel O(1) — important for TCP timers, nearly all of which
   are cancelled rather than fired. *)

type event = {
  time : float;
  seq : int;
  mutable action : (unit -> unit) option;
  live : int ref; (* the owning simulator's count of pending events *)
}

type handle = event

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  live : int ref; (* scheduled and not cancelled *)
  mutable stopping : bool;
  root_rng : Rng.t;
}

let dummy = { time = neg_infinity; seq = -1; action = None; live = ref 0 }

let create ?(seed = 1) () =
  {
    heap = Array.make 256 dummy;
    size = 0;
    clock = 0.;
    next_seq = 0;
    live = ref 0;
    stopping = false;
    root_rng = Rng.create ~seed;
  }

let now t = t.clock
let rng t = t.root_rng
let pending t = !(t.live)

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let push t ev =
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- ev;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    earlier t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

let pop t =
  assert (t.size > 0);
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  (* Sift down. *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done;
  top

let schedule_at t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.clock);
  let ev = { time; seq = t.next_seq; action = Some action; live = t.live } in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  incr t.live;
  ev

let schedule t ~delay action =
  if delay < 0. then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel ev =
  match ev.action with
  | None -> ()
  | Some _ ->
      ev.action <- None;
      decr ev.live

let cancelled ev = ev.action = None

let stop t = t.stopping <- true

let step t =
  let rec next () =
    if t.size = 0 then false
    else
      let ev = pop t in
      match ev.action with
      | None -> next () (* cancelled: skip silently *)
      | Some action ->
          ev.action <- None;
          decr t.live;
          t.clock <- ev.time;
          action ();
          true
  in
  next ()

let run ?until t =
  t.stopping <- false;
  let horizon = match until with Some h -> h | None -> infinity in
  let rec loop () =
    if t.stopping then ()
    else if t.size = 0 then ()
    else begin
      (* Peek without popping to honour the horizon. *)
      let top = t.heap.(0) in
      match top.action with
      | None ->
          ignore (pop t);
          loop ()
      | Some _ ->
          if top.time > horizon then t.clock <- horizon
          else begin
            ignore (step t);
            loop ()
          end
    end
  in
  loop ()
