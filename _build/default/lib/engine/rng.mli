(** Deterministic pseudo-random numbers (xoshiro256starstar), seeded
    explicitly so every simulation run is reproducible bit-for-bit. *)

type t

val create : seed:int -> t
(** Seeds the generator via SplitMix64 expansion of [seed]. *)

val split : t -> t
(** A statistically independent generator derived from [t]'s stream; used to
    give each traffic source its own stream so adding a source does not
    perturb the arrival pattern of others. *)

val bits64 : t -> int64
val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; [bound] must be positive. *)

val bool : t -> bool
val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean (Poisson arrivals). *)

val bytes : t -> int -> string
(** [bytes t n] is [n] random bytes (e.g. keys, nonces). *)
