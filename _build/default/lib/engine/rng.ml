(* xoshiro256** seeded by SplitMix64, per Blackman & Vigna's reference
   implementation.  Int64 arithmetic wraps, which is exactly what both
   algorithms assume. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (bits64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let float t bound =
  (* 53 high bits give a uniform double in [0,1). *)
  let u = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float u /. 9007199254740992. *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Modulo bias is negligible for the bounds used here (< 2^32). *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int bound))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0. then 1e-300 else u in
  -.mean *. log u

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.logand (bits64 t) 0xffL)))
  done;
  Bytes.unsafe_to_string b
