(* Quickstart: the smallest complete TVA network.

   Two hosts separated by two capability routers; the client fetches 20 KB
   from the server.  Watch the capability lifecycle: the SYN goes out as a
   request, routers stamp pre-capabilities, the server's policy converts
   them into a 32 KB / 10 s grant riding the SYN/ACK, and the data then
   flows as regular packets (full capability list once, 48-bit nonce
   afterwards).

   Run with: dune exec examples/quickstart.exe *)

let () =
  let sim = Sim.create ~seed:42 () in
  let params = Tva.Params.default in
  let net = Net.create sim in

  (* Topology: client -- r1 -- r2 -- server, 10 Mb/s everywhere. *)
  let make_qdisc () = Tva.Qdiscs.make ~params ~bandwidth_bps:10e6 () in
  let sink _node ~in_link:_ _p = () in
  let client_node = Net.add_node ~addr:(Wire.Addr.of_int 0x0a000001) ~name:"client" net sink in
  let r1 = Net.add_node ~name:"r1" net sink in
  let r2 = Net.add_node ~name:"r2" net sink in
  let server_node = Net.add_node ~addr:(Wire.Addr.of_int 0xc0a80001) ~name:"server" net sink in
  let connect a b =
    ignore (Net.duplex net a b ~bandwidth_bps:10e6 ~delay:0.005 ~qdisc:make_qdisc)
  in
  connect client_node r1;
  connect r1 r2;
  connect r2 server_node;
  Net.compute_routes net;

  (* Capability routers. *)
  let install node =
    let router =
      Tva.Router.create ~params ~secret_master:("secret" ^ Net.node_name node)
        ~router_id:(Net.node_id node) ~sim ~link_bps:10e6 ()
    in
    Net.set_handler node (Tva.Router.handler router);
    router
  in
  let router1 = install r1 in
  let router2 = install r2 in

  (* Hosts: the client accepts reverse requests from servers it contacted;
     the server grants every first request a default budget. *)
  let client_host =
    Tva.Host.create ~params ~policy:(Tva.Policy.client ()) ~node:client_node
      ~rng:(Rng.split (Sim.rng sim)) ()
  in
  let server_host =
    Tva.Host.create ~params ~policy:(Tva.Policy.server ()) ~node:server_node
      ~rng:(Rng.split (Sim.rng sim)) ()
  in

  (* One 20 KB transfer over the toy TCP. *)
  let server_agent =
    Tcp.Conn.create_server ~sim ~conn_id:1
      ~tx:(fun seg -> Tva.Host.send_segment server_host ~dst:(Tva.Host.addr client_host) seg)
      ()
  in
  Tva.Host.set_segment_handler server_host (fun ~src:_ seg -> Tcp.Conn.server_receive server_agent seg);
  let client_agent =
    Tcp.Conn.create_client ~sim ~conn_id:1 ~transfer_bytes:(20 * 1024)
      ~tx:(fun seg -> Tva.Host.send_segment client_host ~dst:(Tva.Host.addr server_host) seg)
      ~on_complete:(fun outcome ->
        match outcome with
        | Tcp.Conn.Completed { duration } ->
            Printf.printf "transfer completed in %.3f s of virtual time\n" duration
        | Tcp.Conn.Aborted { reason; _ } -> Printf.printf "transfer aborted: %s\n" reason)
      ()
  in
  Tva.Host.set_segment_handler client_host (fun ~src:_ seg -> Tcp.Conn.client_receive client_agent seg);
  Tcp.Conn.start client_agent;

  Sim.run ~until:10. sim;

  let c = Tva.Host.counters client_host in
  Printf.printf "client: %d requests sent, %d grants received, %d renewals sent\n"
    c.Tva.Host.requests_sent c.Tva.Host.grants_received c.Tva.Host.renewals_sent;
  let s = Tva.Host.counters server_host in
  Printf.printf "server: %d grants issued, %d requests refused\n" s.Tva.Host.grants_issued
    s.Tva.Host.requests_refused;
  let pr name router =
    let k = Tva.Router.counters router in
    Printf.printf
      "%s: %d requests stamped, %d packets validated from cache, %d via capability hashes, %d demoted\n"
      name k.Tva.Router.requests k.Tva.Router.regular_cached k.Tva.Router.regular_validated
      k.Tva.Router.demotions
  in
  pr "r1" router1;
  pr "r2" router2
