(* A public web server under attack: the paper's motivating scenario.

   Ten clients repeatedly fetch 20 KB files from a server behind a 10 Mb/s
   bottleneck while 60 attacking hosts (6x the bottleneck) flood it — first
   with unauthorized legacy traffic, then with request packets.  The same
   workload is run over the legacy Internet and over TVA to show what the
   architecture buys.

   Run with: dune exec examples/public_server.exe *)

open Workload

let describe label r =
  Printf.printf "  %-22s completion %5.1f%%   mean transfer %6s\n" label
    (100. *. r.Experiment.fraction_completed)
    (if Float.is_nan r.Experiment.avg_transfer_time then "-"
     else Printf.sprintf "%.2fs" r.Experiment.avg_transfer_time)

let run_case scheme attack =
  Experiment.run
    {
      Experiment.default with
      Experiment.scheme;
      n_attackers = 60;
      attack;
      transfers_per_user = 30;
      max_time = 90.;
    }

let () =
  let internet = Scheme.internet () in
  let tva = Scheme.tva ~params:Scenario.sim_params () in
  Printf.printf "Unauthorized (legacy) flood, 60 attackers x 1 Mb/s into a 10 Mb/s bottleneck:\n";
  describe "legacy Internet" (run_case internet (Experiment.Legacy_flood { rate_bps = 1e6 }));
  describe "TVA" (run_case tva (Experiment.Legacy_flood { rate_bps = 1e6 }));
  Printf.printf "\nRequest flood (attackers spray capability requests):\n";
  describe "legacy Internet" (run_case internet (Experiment.Request_flood { rate_bps = 1e6 }));
  describe "TVA" (run_case tva (Experiment.Request_flood { rate_bps = 1e6 }));
  Printf.printf
    "\nTVA holds the server reachable because attack traffic never gets capabilities:\n\
    \  unauthorized packets ride the lowest-priority legacy class, and the\n\
    \  request channel is rate-limited and fair-queued per path identifier.\n"
