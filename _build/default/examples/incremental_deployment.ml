(* Incremental deployment (paper Sec. 8): TVA needs no flag day.  Routers
   are upgraded at trust boundaries and congestion points; hosts behind
   legacy-only paths still communicate (as low-priority legacy traffic),
   and each additional upgraded router intercepts floods earlier.

   The demo builds a 4-router chain with the congested link in the middle,
   an attacker entering at the edge, and compares three deployments:
   no TVA routers, TVA at the congestion point only, and TVA everywhere.

   Run with: dune exec examples/incremental_deployment.exe *)

let params = Tva.Params.default

type deployment = { label : string; upgraded : int -> bool }

let run { label; upgraded } =
  let sim = Sim.create ~seed:7 () in
  let net = Net.create sim in
  let sink _node ~in_link:_ _p = () in
  let n_routers = 4 in
  let congested_hop = 1 (* the link between routers 1 and 2 is the 10 Mb/s pinch *) in
  let qdisc_for i =
    (* The queue on a link belongs to its upstream router. *)
    if upgraded i then fun ~bandwidth_bps -> Tva.Qdiscs.make ~params ~bandwidth_bps ()
    else fun ~bandwidth_bps -> Baseline.Internet.make_qdisc ~bandwidth_bps
  in
  let routers =
    Array.init n_routers (fun i -> Net.add_node ~name:(Printf.sprintf "r%d" i) net sink)
  in
  let link_bandwidth hop = if hop = congested_hop then 10e6 else 100e6 in
  for i = 0 to n_routers - 2 do
    ignore
      (Net.duplex net routers.(i) routers.(i + 1) ~bandwidth_bps:(link_bandwidth i) ~delay:0.005
         ~qdisc:(fun () -> (qdisc_for i) ~bandwidth_bps:(link_bandwidth i)))
  done;
  let source = Net.add_node ~addr:(Wire.Addr.of_int 0x0a000001) ~name:"source" net sink in
  let attacker = Net.add_node ~addr:(Wire.Addr.of_int 0x0b000001) ~name:"attacker" net sink in
  let destination = Net.add_node ~addr:(Wire.Addr.of_int 0xc0a80001) ~name:"dest" net sink in
  let attach host router qdisc_idx =
    ignore
      (Net.duplex net host router ~bandwidth_bps:100e6 ~delay:0.005
         ~qdisc:(fun () -> (qdisc_for qdisc_idx) ~bandwidth_bps:100e6))
  in
  attach source routers.(0) 0;
  attach attacker routers.(0) 0;
  attach destination routers.(n_routers - 1) (n_routers - 1);
  Net.compute_routes net;
  Array.iteri
    (fun i node ->
      if upgraded i then begin
        let router =
          Tva.Router.create ~params ~secret_master:(Printf.sprintf "secret-%d" i) ~router_id:i
            ~sim ~link_bps:(link_bandwidth (min i (n_routers - 2))) ()
        in
        Net.set_handler node (Tva.Router.handler router)
      end
      else Net.set_handler node Baseline.Internet.router_handler)
    routers;
  (* TVA hosts at both ends (the upgraded-host story: proxies at the
     customer edge). *)
  let src_host =
    Tva.Host.create ~params ~policy:(Tva.Policy.client ()) ~node:source
      ~rng:(Rng.split (Sim.rng sim)) ()
  in
  let dst_host =
    Tva.Host.create ~params ~policy:(Tva.Policy.server ()) ~node:destination
      ~rng:(Rng.split (Sim.rng sim)) ()
  in
  (* Attacker floods the destination with legacy traffic at 10x the pinch. *)
  let flood_interval = 8000. /. 100e6 in
  let rec flood () =
    Net.originate attacker
      (Wire.Packet.make ~src:(Wire.Addr.of_int 0x0b000001) ~dst:(Wire.Addr.of_int 0xc0a80001)
         ~created:(Sim.now sim) (Wire.Packet.Raw 1000));
    ignore (Sim.schedule sim ~delay:flood_interval flood)
  in
  flood ();
  (* The source repeatedly fetches 20 KB; measure mean transfer time. *)
  let times = Stats.Summary.create () in
  let aborts = ref 0 in
  let conn = ref 0 in
  let server_conns = Hashtbl.create 8 in
  Tva.Host.set_segment_handler dst_host (fun ~src seg ->
      let key = (Wire.Addr.to_int src, seg.Wire.Tcp_segment.conn) in
      let server =
        match Hashtbl.find_opt server_conns key with
        | Some s -> s
        | None ->
            let s =
              Tcp.Conn.create_server ~sim ~conn_id:seg.Wire.Tcp_segment.conn
                ~tx:(fun reply -> Tva.Host.send_segment dst_host ~dst:src reply)
                ()
            in
            Hashtbl.add server_conns key s;
            s
      in
      Tcp.Conn.server_receive server seg);
  let rec next_transfer () =
    incr conn;
    let c =
      Tcp.Conn.create_client ~sim ~conn_id:!conn ~transfer_bytes:(20 * 1024)
        ~tx:(fun seg -> Tva.Host.send_segment src_host ~dst:(Tva.Host.addr dst_host) seg)
        ~on_complete:(fun outcome ->
          (match outcome with
          | Tcp.Conn.Completed { duration } -> Stats.Summary.add times duration
          | Tcp.Conn.Aborted _ -> incr aborts);
          ignore (Sim.schedule sim ~delay:0. next_transfer))
        ()
    in
    Tva.Host.set_segment_handler src_host (fun ~src:_ seg -> Tcp.Conn.client_receive c seg);
    Tcp.Conn.start c
  in
  next_transfer ();
  Sim.run ~until:30. sim;
  Printf.printf "  %-28s %3d transfers, %2d aborts, mean %6s\n" label (Stats.Summary.count times)
    !aborts
    (if Stats.Summary.count times = 0 then "-"
     else Printf.sprintf "%.2fs" (Stats.Summary.mean times))

let () =
  Printf.printf
    "A 4-router chain with a 10 Mb/s pinch between r1 and r2; an attacker at\n\
     the edge floods the destination at 10x the pinch capacity.\n\n";
  List.iter run
    [
      { label = "no TVA routers"; upgraded = (fun _ -> false) };
      { label = "TVA at congestion point"; upgraded = (fun i -> i = 1) };
      { label = "TVA everywhere"; upgraded = (fun _ -> true) };
    ];
  Printf.printf
    "\nUpgrading just the congestion point already restores service: the\n\
     capability queue forms exactly where bandwidth is scarce.  Wider\n\
     deployment intercepts the flood earlier but does not change the outcome\n\
     for this path (Sec. 8's incremental-deployment argument).\n"
