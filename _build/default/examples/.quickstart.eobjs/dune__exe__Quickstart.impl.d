examples/quickstart.ml: Net Printf Rng Sim Tcp Tva Wire
