examples/incremental_deployment.ml: Array Baseline Hashtbl List Net Printf Rng Sim Stats Tcp Tva Wire
