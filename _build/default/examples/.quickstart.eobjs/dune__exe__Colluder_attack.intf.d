examples/colluder_attack.mli:
