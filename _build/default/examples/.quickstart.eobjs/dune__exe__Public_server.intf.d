examples/public_server.mli:
