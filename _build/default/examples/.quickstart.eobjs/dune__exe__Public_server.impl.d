examples/public_server.ml: Experiment Float Printf Scenario Scheme Workload
