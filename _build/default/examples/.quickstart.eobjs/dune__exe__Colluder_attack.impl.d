examples/colluder_attack.ml: Experiment Float List Printf Scenario Scheme Workload
