examples/quickstart.mli:
