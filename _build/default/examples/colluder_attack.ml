(* The colluder attack (paper Sec. 5.3, Fig. 10): attackers cannot get
   capabilities from the victim, so they pair with a colluding host behind
   the same bottleneck that authorizes their floods.  The flood is then
   fully "authorized" traffic.

   TVA's last line of defense is per-destination fair queueing over cached
   flows: the colluder-bound aggregate and the victim-bound aggregate each
   get half of the bottleneck, so the victim's clients slow only
   marginally.  SIFF, with no per-flow state, starves them completely.

   Run with: dune exec examples/colluder_attack.exe *)

open Workload

let run_case scheme =
  Experiment.run
    {
      Experiment.default with
      Experiment.scheme;
      n_attackers = 40;
      attack = Experiment.Authorized_flood { rate_bps = 1e6 };
      transfers_per_user = 30;
      max_time = 90.;
    }

let () =
  Printf.printf "40 attackers flood a colluder behind the victim's bottleneck (4x capacity):\n\n";
  List.iter
    (fun (name, factory) ->
      let r = run_case factory in
      Printf.printf "  %-10s completion %5.1f%%  mean transfer %6s\n" name
        (100. *. r.Experiment.fraction_completed)
        (if Float.is_nan r.Experiment.avg_transfer_time then "-"
         else Printf.sprintf "%.2fs" r.Experiment.avg_transfer_time))
    [ ("siff", Scheme.siff ()); ("tva", Scheme.tva ~params:Scenario.sim_params ()) ];
  Printf.printf
    "\nWith TVA the destination and the colluder share the bottleneck roughly\n\
     50/50 (per-destination DRR), so transfers complete at about half speed.\n\
     With SIFF the authorized flood owns the high-priority class outright and\n\
     legitimate handshakes never get through.\n"
