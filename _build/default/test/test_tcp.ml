(* The TCP substrate: handshake, sliding transfer, loss recovery, and the
   paper's establishment/abort parameters.  The transport is a direct
   simulated pipe with injectable loss — no network stack needed. *)

type pipe = { mutable drop_c2s : Wire.Tcp_segment.t -> bool; mutable drop_s2c : Wire.Tcp_segment.t -> bool }

let no_loss _ = false

(* Build a client/server pair joined by a [delay]-latency pipe. *)
let make_pair ?(transfer = 20 * 1024) ?(delay = 0.03) ~sim () =
  let pipe = { drop_c2s = no_loss; drop_s2c = no_loss } in
  let server_ref = ref None in
  let client_ref = ref None in
  let outcome = ref None in
  let client =
    Tcp.Conn.create_client ~sim ~conn_id:1 ~transfer_bytes:transfer
      ~tx:(fun seg ->
        if not (pipe.drop_c2s seg) then
          ignore
            (Sim.schedule sim ~delay (fun () ->
                 match !server_ref with Some s -> Tcp.Conn.server_receive s seg | None -> ())))
      ~on_complete:(fun o -> outcome := Some o)
      ()
  in
  client_ref := Some client;
  let server =
    Tcp.Conn.create_server ~sim ~conn_id:1
      ~tx:(fun seg ->
        if not (pipe.drop_s2c seg) then
          ignore
            (Sim.schedule sim ~delay (fun () ->
                 match !client_ref with Some c -> Tcp.Conn.client_receive c seg | None -> ())))
      ()
  in
  server_ref := Some server;
  (client, server, pipe, outcome)

let lossless_transfer_completes () =
  let sim = Sim.create () in
  let client, server, _, outcome = make_pair ~sim () in
  Tcp.Conn.start client;
  Sim.run ~until:60. sim;
  (match !outcome with
  | Some (Tcp.Conn.Completed { duration }) ->
      (* 20 KB over a 60 ms RTT with initial window 2: handshake + 4 data
         rounds ≈ 0.3 s. *)
      Alcotest.(check bool) (Printf.sprintf "duration %.3f" duration) true (duration < 0.5)
  | Some (Tcp.Conn.Aborted { reason; _ }) -> Alcotest.failf "aborted: %s" reason
  | None -> Alcotest.fail "never finished");
  Alcotest.(check int) "server got all bytes" (20 * 1024) (Tcp.Conn.server_bytes_received server);
  Alcotest.(check bool) "client done" true (Tcp.Conn.client_finished client)

let completes_with_random_loss () =
  let sim = Sim.create () in
  let client, server, pipe, outcome = make_pair ~sim () in
  let rng = Rng.create ~seed:5 in
  pipe.drop_c2s <- (fun _ -> Rng.float rng 1.0 < 0.1);
  pipe.drop_s2c <- (fun _ -> Rng.float rng 1.0 < 0.1);
  Tcp.Conn.start client;
  Sim.run ~until:120. sim;
  (match !outcome with
  | Some (Tcp.Conn.Completed _) -> ()
  | Some (Tcp.Conn.Aborted { reason; _ }) -> Alcotest.failf "aborted: %s" reason
  | None -> Alcotest.fail "never finished");
  Alcotest.(check int) "all bytes" (20 * 1024) (Tcp.Conn.server_bytes_received server)

let syn_retransmits_on_fixed_timer () =
  let sim = Sim.create () in
  let syn_times = ref [] in
  let client =
    Tcp.Conn.create_client ~sim ~conn_id:1 ~transfer_bytes:1000
      ~tx:(fun seg ->
        if seg.Wire.Tcp_segment.flags = Wire.Tcp_segment.Syn then
          syn_times := Sim.now sim :: !syn_times)
      ~on_complete:(fun _ -> ())
      ()
  in
  Tcp.Conn.start client;
  Sim.run ~until:3.5 sim;
  match List.rev !syn_times with
  | t0 :: t1 :: t2 :: _ ->
      Alcotest.(check (float 1e-9)) "first at 0" 0. t0;
      (* Fixed one-second spacing, no exponential backoff (paper Sec. 5). *)
      Alcotest.(check (float 1e-9)) "second at 1s" 1. t1;
      Alcotest.(check (float 1e-9)) "third at 2s" 2. t2
  | _ -> Alcotest.fail "fewer than 3 SYNs in 3.5s"

let connection_aborts_after_nine_syns () =
  let sim = Sim.create () in
  let syns = ref 0 in
  let outcome = ref None in
  let client =
    Tcp.Conn.create_client ~sim ~conn_id:1 ~transfer_bytes:1000
      ~tx:(fun seg -> if seg.Wire.Tcp_segment.flags = Wire.Tcp_segment.Syn then incr syns)
      ~on_complete:(fun o -> outcome := Some o)
      ()
  in
  Tcp.Conn.start client;
  Sim.run ~until:30. sim;
  Alcotest.(check int) "1 initial + 8 retransmissions" 9 !syns;
  match !outcome with
  | Some (Tcp.Conn.Aborted { reason; at }) ->
      Alcotest.(check string) "reason" "connection establishment failed" reason;
      Alcotest.(check (float 0.01)) "after 9s" 9. at
  | _ -> Alcotest.fail "expected establishment abort"

let aborts_when_segment_transmitted_too_often () =
  let sim = Sim.create () in
  let client, _, pipe, outcome = make_pair ~transfer:2000 ~sim () in
  (* Handshake passes; all data is eaten. *)
  pipe.drop_c2s <- (fun seg -> seg.Wire.Tcp_segment.payload > 0);
  Tcp.Conn.start client;
  Sim.run ~until:400. sim;
  match !outcome with
  | Some (Tcp.Conn.Aborted { reason; _ }) ->
      Alcotest.(check bool)
        ("abort reason: " ^ reason)
        true
        (reason = "segment transmitted too many times"
        || reason = "retransmission timeout exceeded 64s")
  | Some (Tcp.Conn.Completed _) -> Alcotest.fail "completed impossibly"
  | None -> Alcotest.fail "hung"

let duplicate_synack_harmless () =
  let sim = Sim.create () in
  let client, server, pipe, outcome = make_pair ~transfer:3000 ~sim () in
  ignore pipe;
  Tcp.Conn.start client;
  (* Inject a gratuitous duplicate SYN to provoke a duplicate SYN/ACK. *)
  ignore
    (Sim.schedule sim ~delay:0.1 (fun () ->
         Tcp.Conn.server_receive server
           { Wire.Tcp_segment.conn = 1; flags = Wire.Tcp_segment.Syn; seq = 0; ack = 0; payload = 0 }));
  Sim.run ~until:30. sim;
  match !outcome with
  | Some (Tcp.Conn.Completed _) -> ()
  | _ -> Alcotest.fail "duplicate SYN/ACK broke the transfer"

let out_of_order_data_is_buffered () =
  let sim = Sim.create () in
  let acks = ref [] in
  let server =
    Tcp.Conn.create_server ~sim ~conn_id:1
      ~tx:(fun seg ->
        if seg.Wire.Tcp_segment.flags = Wire.Tcp_segment.Ack then acks := seg.Wire.Tcp_segment.ack :: !acks)
      ()
  in
  Tcp.Conn.server_receive server
    { Wire.Tcp_segment.conn = 1; flags = Wire.Tcp_segment.Syn; seq = 0; ack = 0; payload = 0 };
  let data seq =
    { Wire.Tcp_segment.conn = 1; flags = Wire.Tcp_segment.Ack; seq; ack = 0; payload = 1000 }
  in
  (* Segment 2 before segment 1. *)
  Tcp.Conn.server_receive server (data 1000);
  Alcotest.(check (option int)) "holds at 0" (Some 0) (List.nth_opt !acks 0);
  Tcp.Conn.server_receive server (data 0);
  Alcotest.(check (option int)) "jumps to 2000" (Some 2000) (List.nth_opt !acks 0);
  Alcotest.(check int) "in-order bytes" 2000 (Tcp.Conn.server_bytes_received server)

let wrong_conn_id_ignored () =
  let sim = Sim.create () in
  let client, _server, _pipe, outcome = make_pair ~transfer:1000 ~sim () in
  Tcp.Conn.start client;
  Tcp.Conn.client_receive client
    { Wire.Tcp_segment.conn = 99; flags = Wire.Tcp_segment.Syn_ack; seq = 0; ack = 0; payload = 0 };
  Alcotest.(check bool) "still unestablished" true (!outcome = None);
  Alcotest.(check int) "no bytes acked" 0 (Tcp.Conn.client_bytes_acked client)

let rst_aborts () =
  let sim = Sim.create () in
  let client, _server, _pipe, outcome = make_pair ~transfer:1000 ~sim () in
  Tcp.Conn.start client;
  Tcp.Conn.client_receive client
    { Wire.Tcp_segment.conn = 1; flags = Wire.Tcp_segment.Rst; seq = 0; ack = 0; payload = 0 };
  match !outcome with
  | Some (Tcp.Conn.Aborted { reason; _ }) -> Alcotest.(check string) "reset" "connection reset" reason
  | _ -> Alcotest.fail "RST ignored"

(* --- Rto -------------------------------------------------------------- *)

let rto_defaults () =
  let r = Tcp.Rto.create () in
  Alcotest.(check (float 1e-9)) "initial" Tcp.Rto.min_rto (Tcp.Rto.base r);
  Tcp.Rto.backoff r;
  Alcotest.(check (float 1e-9)) "doubled" (2. *. Tcp.Rto.min_rto) (Tcp.Rto.current r);
  Tcp.Rto.reset_backoff r;
  Alcotest.(check (float 1e-9)) "reset" Tcp.Rto.min_rto (Tcp.Rto.current r)

let rto_tracks_rtt () =
  let r = Tcp.Rto.create () in
  for _ = 1 to 50 do
    Tcp.Rto.observe r 0.5
  done;
  (* With constant samples, rttvar decays toward 0 and rto -> srtt. *)
  Alcotest.(check bool) "near srtt" true (Tcp.Rto.base r < 0.7 && Tcp.Rto.base r >= 0.5)

let rto_min_floor () =
  let r = Tcp.Rto.create () in
  for _ = 1 to 50 do
    Tcp.Rto.observe r 0.001
  done;
  Alcotest.(check (float 1e-9)) "floored" Tcp.Rto.min_rto (Tcp.Rto.base r)

let rto_variance_raises_timeout () =
  let r = Tcp.Rto.create () in
  List.iter (Tcp.Rto.observe r) [ 0.1; 0.9; 0.1; 0.9; 0.1; 0.9 ];
  Alcotest.(check bool) "variance counted" true (Tcp.Rto.base r > 0.9)

let rto_backoff_is_exponential =
  QCheck.Test.make ~name:"rto: n backoffs multiply by 2^n" ~count:20
    QCheck.(int_range 0 10)
    (fun n ->
      let r = Tcp.Rto.create () in
      for _ = 1 to n do
        Tcp.Rto.backoff r
      done;
      Float.abs (Tcp.Rto.current r -. (Tcp.Rto.base r *. (2. ** float_of_int n))) < 1e-9)

let suite =
  [
    Alcotest.test_case "lossless transfer" `Quick lossless_transfer_completes;
    Alcotest.test_case "transfer with loss" `Quick completes_with_random_loss;
    Alcotest.test_case "syn fixed timer" `Quick syn_retransmits_on_fixed_timer;
    Alcotest.test_case "syn abort after 9" `Quick connection_aborts_after_nine_syns;
    Alcotest.test_case "data abort limits" `Quick aborts_when_segment_transmitted_too_often;
    Alcotest.test_case "duplicate syn/ack" `Quick duplicate_synack_harmless;
    Alcotest.test_case "out of order" `Quick out_of_order_data_is_buffered;
    Alcotest.test_case "wrong conn id" `Quick wrong_conn_id_ignored;
    Alcotest.test_case "rst aborts" `Quick rst_aborts;
    Alcotest.test_case "rto defaults" `Quick rto_defaults;
    Alcotest.test_case "rto tracks rtt" `Quick rto_tracks_rtt;
    Alcotest.test_case "rto floor" `Quick rto_min_floor;
    Alcotest.test_case "rto variance" `Quick rto_variance_raises_timeout;
    QCheck_alcotest.to_alcotest rto_backoff_is_exponential;
  ]
