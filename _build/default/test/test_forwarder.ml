(* The fast path and the forwarding-rate model behind Table 1 / Fig. 12. *)

let all_ops_run () =
  let fp = Forwarder.Fastpath.create () in
  List.iter
    (fun op ->
      (* Each op must be callable millions of times without state decay;
         run a few thousand as a smoke check. *)
      for _ = 1 to 2000 do
        Forwarder.Fastpath.run fp op
      done)
    Forwarder.Fastpath.all_ops

let cost_ordering_matches_table1 () =
  (* The paper's Table 1 ordering: cached << request ≈ renewal-hit <
     regular-miss < renewal-miss.  Absolute values differ (pure-OCaml
     crypto), the ordering must not. *)
  let fp = Forwarder.Fastpath.create () in
  let t op = Forwarder.Fastpath.calibrate ~iters:4000 fp op in
  let legacy = t Forwarder.Fastpath.Legacy_forward in
  let cached = t Forwarder.Fastpath.Regular_cached in
  let request = t Forwarder.Fastpath.Request in
  let renewal_hit = t Forwarder.Fastpath.Renewal_cached in
  let uncached = t Forwarder.Fastpath.Regular_uncached in
  let renewal_miss = t Forwarder.Fastpath.Renewal_uncached in
  Alcotest.(check bool) "cached is cheap" true (cached < request /. 5.);
  Alcotest.(check bool) "legacy is cheap" true (legacy < request /. 5.);
  Alcotest.(check bool) "request ≈ renewal-hit (one hash each)" true
    (Float.abs (request -. renewal_hit) < Float.max request renewal_hit *. 0.5);
  Alcotest.(check bool) "two hashes cost more than one" true (uncached > request *. 1.3);
  Alcotest.(check bool) "renewal-miss is the worst" true
    (renewal_miss > uncached && renewal_miss > renewal_hit)

let siphash_variant_is_faster () =
  let heavy = Forwarder.Fastpath.create () in
  let light =
    Forwarder.Fastpath.create
      ~hash_precap:(module Crypto.Keyed_hash.Fast)
      ~hash_cap:(module Crypto.Keyed_hash.Fast)
      ()
  in
  let th = Forwarder.Fastpath.calibrate ~iters:3000 heavy Forwarder.Fastpath.Regular_uncached in
  let tl = Forwarder.Fastpath.calibrate ~iters:3000 light Forwarder.Fastpath.Regular_uncached in
  Alcotest.(check bool) (Printf.sprintf "siphash (%.0fns) < aes+sha (%.0fns)" tl th) true (tl < th)

(* --- Livelock model -------------------------------------------------------- *)

let output_equals_input_below_peak () =
  let out =
    Forwarder.Livelock.output_rate Forwarder.Livelock.Naive ~interrupt_s:3.5e-6
      ~processing_s:33e-9 ~input_pps:100_000.
  in
  Alcotest.(check (float 1e-6)) "lossless region" 100_000. out

let peak_formula () =
  Alcotest.(check (float 1.)) "1/(ti+tp)"
    (1. /. (3.5e-6 +. 1486e-9))
    (Forwarder.Livelock.peak_rate ~interrupt_s:3.5e-6 ~processing_s:1486e-9)

let paper_peaks_in_range () =
  (* With the paper's Table 1 costs and 3.5 us interrupts, peaks must land
     in the 160-280 kpps band of Fig. 12. *)
  List.iter
    (fun processing_s ->
      let peak = Forwarder.Livelock.peak_rate ~interrupt_s:3.5e-6 ~processing_s in
      Alcotest.(check bool)
        (Printf.sprintf "peak %.0f kpps" (peak /. 1e3))
        true
        (peak >= 160_000. && peak <= 290_000.))
    [ 33e-9; 460e-9; 439e-9; 1486e-9; 1821e-9 ]

let naive_livelocks_past_saturation () =
  let at rate =
    Forwarder.Livelock.output_rate Forwarder.Livelock.Naive ~interrupt_s:3.5e-6
      ~processing_s:1486e-9 ~input_pps:rate
  in
  let peak = Forwarder.Livelock.peak_rate ~interrupt_s:3.5e-6 ~processing_s:1486e-9 in
  Alcotest.(check bool) "declines past peak" true (at (peak *. 1.3) < peak);
  Alcotest.(check (float 1e-6)) "full livelock" 0. (at (1.1 /. 3.5e-6))

let lrp_holds_the_peak () =
  let peak = Forwarder.Livelock.peak_rate ~interrupt_s:3.5e-6 ~processing_s:1486e-9 in
  let out =
    Forwarder.Livelock.output_rate Forwarder.Livelock.Lrp ~interrupt_s:3.5e-6
      ~processing_s:1486e-9 ~input_pps:(3. *. peak)
  in
  Alcotest.(check (float 1e-6)) "flat at peak" peak out

let lrp_dominates_naive =
  QCheck.Test.make ~name:"livelock: LRP output >= naive output at any load" ~count:200
    QCheck.(float_range 0. 1e6)
    (fun input_pps ->
      let f d =
        Forwarder.Livelock.output_rate d ~interrupt_s:3.5e-6 ~processing_s:460e-9 ~input_pps
      in
      f Forwarder.Livelock.Lrp >= f Forwarder.Livelock.Naive -. 1e-9)

let output_never_exceeds_input =
  QCheck.Test.make ~name:"livelock: conservation (output <= input)" ~count:200
    QCheck.(pair (float_range 0. 1e6) (float_range 1e-9 1e-5))
    (fun (input_pps, processing_s) ->
      List.for_all
        (fun d ->
          Forwarder.Livelock.output_rate d ~interrupt_s:3.5e-6 ~processing_s ~input_pps
          <= input_pps +. 1e-9)
        [ Forwarder.Livelock.Naive; Forwarder.Livelock.Lrp ])

let simulation_matches_model_below_peak () =
  let measured =
    Forwarder.Livelock.simulate Forwarder.Livelock.Naive ~interrupt_s:3.5e-6 ~processing_s:460e-9
      ~input_pps:100_000.
  in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.0f ≈ 100k" measured)
    true
    (Float.abs (measured -. 100_000.) < 5_000.)

let simulation_shows_livelock () =
  let peak = Forwarder.Livelock.peak_rate ~interrupt_s:3.5e-6 ~processing_s:460e-9 in
  let over =
    Forwarder.Livelock.simulate Forwarder.Livelock.Naive ~interrupt_s:3.5e-6 ~processing_s:460e-9
      ~input_pps:(2. *. peak)
  in
  let lrp =
    Forwarder.Livelock.simulate Forwarder.Livelock.Lrp ~interrupt_s:3.5e-6 ~processing_s:460e-9
      ~input_pps:(2. *. peak)
  in
  Alcotest.(check bool)
    (Printf.sprintf "naive %.0f < lrp %.0f under overload" over lrp)
    true (over < lrp)

let series_shape () =
  let s = Forwarder.Livelock.series ~processing_s:1486e-9 () in
  Alcotest.(check int) "41 samples" 41 (List.length s);
  List.iter (fun (i, o) -> if o > i +. 1e-9 then Alcotest.fail "output above input") s

let suite =
  [
    Alcotest.test_case "all ops run" `Quick all_ops_run;
    Alcotest.test_case "table1 ordering" `Slow cost_ordering_matches_table1;
    Alcotest.test_case "siphash faster" `Slow siphash_variant_is_faster;
    Alcotest.test_case "below peak lossless" `Quick output_equals_input_below_peak;
    Alcotest.test_case "peak formula" `Quick peak_formula;
    Alcotest.test_case "paper peaks 160-280k" `Quick paper_peaks_in_range;
    Alcotest.test_case "naive livelock" `Quick naive_livelocks_past_saturation;
    Alcotest.test_case "lrp holds peak" `Quick lrp_holds_the_peak;
    QCheck_alcotest.to_alcotest lrp_dominates_naive;
    QCheck_alcotest.to_alcotest output_never_exceeds_input;
    Alcotest.test_case "simulation below peak" `Quick simulation_matches_model_below_peak;
    Alcotest.test_case "simulation livelock" `Quick simulation_shows_livelock;
    Alcotest.test_case "series shape" `Quick series_shape;
  ]
