(* Queueing disciplines: FIFO semantics, DRR fairness, the token-bucket
   request limiter, the Fig. 2 tri-class scheduler, strict priority and
   SFQ collisions. *)

let mk_packet ?(src = 1) ?(dst = 2) ?(bytes = 1000) () =
  Wire.Packet.make ~src:(Wire.Addr.of_int src) ~dst:(Wire.Addr.of_int dst) ~created:0.
    (Wire.Packet.Raw bytes)

(* --- Droptail ----------------------------------------------------------- *)

let droptail_fifo_order () =
  let q = Droptail.create ~capacity_bytes:10_000 () in
  let a = mk_packet () and b = mk_packet () in
  Alcotest.(check bool) "enq a" true (q.Qdisc.enqueue ~now:0. a);
  Alcotest.(check bool) "enq b" true (q.Qdisc.enqueue ~now:0. b);
  (match q.Qdisc.dequeue ~now:0. with
  | Some p -> Alcotest.(check int) "a first" a.Wire.Packet.id p.Wire.Packet.id
  | None -> Alcotest.fail "empty");
  match q.Qdisc.dequeue ~now:0. with
  | Some p -> Alcotest.(check int) "b second" b.Wire.Packet.id p.Wire.Packet.id
  | None -> Alcotest.fail "empty"

let droptail_byte_capacity () =
  let q = Droptail.create ~capacity_bytes:2500 () in
  Alcotest.(check bool) "1" true (q.Qdisc.enqueue ~now:0. (mk_packet ()));
  Alcotest.(check bool) "2" true (q.Qdisc.enqueue ~now:0. (mk_packet ()));
  Alcotest.(check bool) "3 dropped" false (q.Qdisc.enqueue ~now:0. (mk_packet ()));
  Alcotest.(check int) "drop counted" 1 q.Qdisc.stats.Qdisc.dropped;
  ignore (q.Qdisc.dequeue ~now:0.);
  Alcotest.(check bool) "space after dequeue" true (q.Qdisc.enqueue ~now:0. (mk_packet ()))

let droptail_packet_capacity () =
  let q = Droptail.create ~capacity_packets:2 ~capacity_bytes:1_000_000 () in
  Alcotest.(check bool) "1" true (q.Qdisc.enqueue ~now:0. (mk_packet ~bytes:40 ()));
  Alcotest.(check bool) "2" true (q.Qdisc.enqueue ~now:0. (mk_packet ~bytes:40 ()));
  (* A tiny packet is still rejected once the packet count is reached —
     no small-packet advantage. *)
  Alcotest.(check bool) "3 dropped" false (q.Qdisc.enqueue ~now:0. (mk_packet ~bytes:40 ()))

let droptail_counts () =
  let q = Droptail.create ~capacity_bytes:10_000 () in
  ignore (q.Qdisc.enqueue ~now:0. (mk_packet ()));
  ignore (q.Qdisc.enqueue ~now:0. (mk_packet ~bytes:500 ()));
  Alcotest.(check int) "packets" 2 (q.Qdisc.packet_count ());
  Alcotest.(check int) "bytes" 1500 (q.Qdisc.byte_count ());
  Alcotest.(check (option (float 0.)))
    "ready now" (Some 0.)
    (q.Qdisc.next_ready ~now:0.)

let droptail_empty_next_ready () =
  let q = Droptail.create ~capacity_bytes:1000 () in
  Alcotest.(check (option (float 0.))) "idle" None (q.Qdisc.next_ready ~now:0.)

(* --- DRR ----------------------------------------------------------------- *)

let drr_round_robins_equally () =
  let q = Drr.create ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) () in
  (* Backlog: 10 packets from A, 10 from B. *)
  for _ = 1 to 10 do
    ignore (q.Qdisc.enqueue ~now:0. (mk_packet ~src:1 ()));
    ignore (q.Qdisc.enqueue ~now:0. (mk_packet ~src:2 ()))
  done;
  (* Twelve dequeues cover whole DRR rounds: the split must be 6/6 (within
     a round the 1500-byte quantum staggers 1000-byte packets 1-then-2). *)
  let counts = Hashtbl.create 2 in
  for _ = 1 to 12 do
    match q.Qdisc.dequeue ~now:0. with
    | Some p ->
        let k = Wire.Addr.to_int p.Wire.Packet.src in
        Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
    | None -> Alcotest.fail "ran dry"
  done;
  Alcotest.(check int) "class A" 6 (Option.value ~default:0 (Hashtbl.find_opt counts 1));
  Alcotest.(check int) "class B" 6 (Option.value ~default:0 (Hashtbl.find_opt counts 2))

let drr_byte_fairness_with_unequal_sizes () =
  (* Class A sends 1500-byte packets, class B 500-byte ones: per round B
     should get ~3 packets for A's 1. *)
  let q = Drr.create ~quantum:1500 ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) () in
  for _ = 1 to 30 do
    ignore (q.Qdisc.enqueue ~now:0. (mk_packet ~src:1 ~bytes:1500 ()));
    ignore (q.Qdisc.enqueue ~now:0. (mk_packet ~src:2 ~bytes:500 ()))
  done;
  let bytes = Hashtbl.create 2 in
  for _ = 1 to 24 do
    match q.Qdisc.dequeue ~now:0. with
    | Some p ->
        let k = Wire.Addr.to_int p.Wire.Packet.src in
        Hashtbl.replace bytes k
          (Wire.Packet.size p + Option.value ~default:0 (Hashtbl.find_opt bytes k))
    | None -> Alcotest.fail "ran dry"
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt bytes 1) in
  let b = Option.value ~default:0 (Hashtbl.find_opt bytes 2) in
  Alcotest.(check bool)
    (Printf.sprintf "byte shares close (a=%d b=%d)" a b)
    true
    (float_of_int (abs (a - b)) /. float_of_int (a + b) < 0.2)

let drr_starvation_free =
  QCheck.Test.make ~name:"drr: every backlogged class is eventually served" ~count:50
    QCheck.(list_of_size Gen.(int_range 2 50) (int_range 0 7))
    (fun classes ->
      let q = Drr.create ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) () in
      List.iter (fun c -> ignore (q.Qdisc.enqueue ~now:0. (mk_packet ~src:(c + 1) ()))) classes;
      let served = Hashtbl.create 8 in
      let rec drain () =
        match q.Qdisc.dequeue ~now:0. with
        | Some p ->
            Hashtbl.replace served (Wire.Addr.to_int p.Wire.Packet.src) ();
            drain ()
        | None -> ()
      in
      drain ();
      List.for_all (fun c -> Hashtbl.mem served (c + 1)) classes
      && q.Qdisc.packet_count () = 0)

let drr_respects_per_class_capacity () =
  let q =
    Drr.create ~queue_capacity_bytes:2000 ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) ()
  in
  Alcotest.(check bool) "1" true (q.Qdisc.enqueue ~now:0. (mk_packet ~src:1 ()));
  Alcotest.(check bool) "2" true (q.Qdisc.enqueue ~now:0. (mk_packet ~src:1 ()));
  Alcotest.(check bool) "class full" false (q.Qdisc.enqueue ~now:0. (mk_packet ~src:1 ()));
  Alcotest.(check bool) "other class fine" true (q.Qdisc.enqueue ~now:0. (mk_packet ~src:2 ()))

let drr_overflow_class_shares () =
  let q = Drr.create ~max_queues:2 ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) () in
  (* Three distinct classes with a 2-class bound: the third lands in the
     shared overflow queue rather than being dropped. *)
  Alcotest.(check bool) "a" true (q.Qdisc.enqueue ~now:0. (mk_packet ~src:1 ()));
  Alcotest.(check bool) "b" true (q.Qdisc.enqueue ~now:0. (mk_packet ~src:2 ()));
  Alcotest.(check bool) "c overflows but queues" true (q.Qdisc.enqueue ~now:0. (mk_packet ~src:3 ()));
  Alcotest.(check int) "all queued" 3 (q.Qdisc.packet_count ())

let drr_active_queue_count () =
  let q = Drr.create ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) () in
  ignore (q.Qdisc.enqueue ~now:0. (mk_packet ~src:1 ()));
  ignore (q.Qdisc.enqueue ~now:0. (mk_packet ~src:2 ()));
  Alcotest.(check int) "two active" 2 (Drr.active_queues q);
  let rec drain () = match q.Qdisc.dequeue ~now:0. with Some _ -> drain () | None -> () in
  drain ();
  Alcotest.(check int) "none active" 0 (Drr.active_queues q)

(* --- Token bucket ---------------------------------------------------------- *)

let token_bucket_limits_rate () =
  let inner = Droptail.create ~capacity_bytes:1_000_000 () in
  (* 80 kb/s = 10 KB/s, 2 KB burst. *)
  let q = Token_bucket.create ~rate_bps:80_000. ~burst_bytes:2000 ~inner () in
  for _ = 1 to 10 do
    ignore (q.Qdisc.enqueue ~now:0. (mk_packet ()))
  done;
  (* At t=0 the bucket holds 2 KB: exactly two 1 KB packets. *)
  Alcotest.(check bool) "1st" true (q.Qdisc.dequeue ~now:0. <> None);
  Alcotest.(check bool) "2nd" true (q.Qdisc.dequeue ~now:0. <> None);
  Alcotest.(check bool) "3rd blocked" true (q.Qdisc.dequeue ~now:0. = None);
  (* next_ready points at when the tokens suffice... *)
  (match q.Qdisc.next_ready ~now:0. with
  | Some at -> Alcotest.(check bool) "ready within 0.1s" true (at > 0. && at <= 0.11)
  | None -> Alcotest.fail "no readiness");
  (* ...and the packet flows once they do. *)
  Alcotest.(check bool) "after refill" true (q.Qdisc.dequeue ~now:0.11 <> None)

let token_bucket_long_run_rate () =
  let inner = Droptail.create ~capacity_bytes:10_000_000 () in
  let q = Token_bucket.create ~rate_bps:800_000. ~burst_bytes:2000 ~inner () in
  for _ = 1 to 1000 do
    ignore (q.Qdisc.enqueue ~now:0. (mk_packet ()))
  done;
  (* Pull as fast as permitted for 1 simulated second: ~100 packets
     (100 KB/s) plus the burst. *)
  let served = ref 0 in
  let t = ref 0. in
  while !t < 1.0 do
    (match q.Qdisc.dequeue ~now:!t with Some _ -> incr served | None -> ());
    t := !t +. 0.001
  done;
  Alcotest.(check bool)
    (Printf.sprintf "served %d ≈ 102" !served)
    true
    (!served >= 95 && !served <= 110)

let token_bucket_passes_stats_through () =
  let inner = Droptail.create ~capacity_bytes:500 () in
  let q = Token_bucket.create ~rate_bps:1e6 ~burst_bytes:10_000 ~inner () in
  Alcotest.(check bool) "fits" true (q.Qdisc.enqueue ~now:0. (mk_packet ~bytes:400 ()));
  Alcotest.(check bool) "inner full" false (q.Qdisc.enqueue ~now:0. (mk_packet ~bytes:400 ()))

(* --- Priority --------------------------------------------------------------- *)

let priority_serves_high_first () =
  let high = Droptail.create ~capacity_bytes:10_000 () in
  let low = Droptail.create ~capacity_bytes:10_000 () in
  let q =
    Priority.create
      ~classify:(fun p -> if Wire.Addr.to_int p.Wire.Packet.src = 1 then 0 else 1)
      ~classes:[ high; low ] ()
  in
  ignore (q.Qdisc.enqueue ~now:0. (mk_packet ~src:2 ()));
  ignore (q.Qdisc.enqueue ~now:0. (mk_packet ~src:1 ()));
  (match q.Qdisc.dequeue ~now:0. with
  | Some p -> Alcotest.(check int) "high first" 1 (Wire.Addr.to_int p.Wire.Packet.src)
  | None -> Alcotest.fail "empty");
  match q.Qdisc.dequeue ~now:0. with
  | Some p -> Alcotest.(check int) "then low" 2 (Wire.Addr.to_int p.Wire.Packet.src)
  | None -> Alcotest.fail "empty"

let priority_clamps_class_index () =
  let a = Droptail.create ~capacity_bytes:10_000 () in
  let b = Droptail.create ~capacity_bytes:10_000 () in
  let q = Priority.create ~classify:(fun _ -> 99) ~classes:[ a; b ] () in
  ignore (q.Qdisc.enqueue ~now:0. (mk_packet ()));
  Alcotest.(check int) "landed in last class" 1 (b.Qdisc.packet_count ())

(* --- Tri-class (Fig. 2) ------------------------------------------------------ *)

let tva_shim kind =
  match kind with
  | `Request -> Wire.Cap_shim.request ()
  | `Regular -> Wire.Cap_shim.regular ~nonce:1L ~caps:[] ~n_kb:32 ~t_sec:10 ~renewal:false ()

let tri_class_classifier () =
  let p_legacy = mk_packet () in
  Alcotest.(check bool) "legacy" true (Tri_class.classify_by_shim p_legacy = Tri_class.Legacy);
  let p_req = mk_packet () in
  p_req.Wire.Packet.shim <- Some (tva_shim `Request);
  Alcotest.(check bool) "request" true (Tri_class.classify_by_shim p_req = Tri_class.Request);
  let p_reg = mk_packet () in
  p_reg.Wire.Packet.shim <- Some (tva_shim `Regular);
  Alcotest.(check bool) "regular" true (Tri_class.classify_by_shim p_reg = Tri_class.Regular);
  let p_dem = mk_packet () in
  let shim = tva_shim `Regular in
  shim.Wire.Cap_shim.demoted <- true;
  p_dem.Wire.Packet.shim <- Some shim;
  Alcotest.(check bool) "demoted is legacy" true (Tri_class.classify_by_shim p_dem = Tri_class.Legacy)

let tri_class_legacy_is_lowest_priority () =
  let q = Tva.Qdiscs.make ~params:Tva.Params.default ~bandwidth_bps:10e6 () in
  (* Backlog legacy then regular: regular must come out first. *)
  ignore (q.Qdisc.enqueue ~now:0. (mk_packet ()));
  let reg = mk_packet ~src:5 () in
  reg.Wire.Packet.shim <- Some (tva_shim `Regular);
  ignore (q.Qdisc.enqueue ~now:0. reg);
  match q.Qdisc.dequeue ~now:0. with
  | Some p -> Alcotest.(check bool) "regular first" true (p.Wire.Packet.shim <> None)
  | None -> Alcotest.fail "empty"

let tri_class_requests_rate_limited () =
  let params = { Tva.Params.default with Tva.Params.request_fraction = 0.01; request_burst_bytes = 500 } in
  let q = Tva.Qdiscs.make ~params ~bandwidth_bps:10e6 () in
  (* 1% of 10 Mb/s = 100 kb/s = 12.5 KB/s.  Queue 100 requests of 250 B. *)
  for _ = 1 to 100 do
    let p = mk_packet ~bytes:250 () in
    p.Wire.Packet.shim <- Some (tva_shim `Request);
    (* account for shim size: Raw 250 + shim *)
    ignore (q.Qdisc.enqueue ~now:0. p)
  done;
  (* Draining for one second should release roughly rate/size packets, not
     all 100. *)
  let served = ref 0 in
  let t = ref 0. in
  while !t < 1.0 do
    (match q.Qdisc.dequeue ~now:!t with Some _ -> incr served | None -> ());
    t := !t +. 0.001
  done;
  Alcotest.(check bool)
    (Printf.sprintf "served %d bounded by limiter" !served)
    true
    (!served > 10 && !served < 70)

let tri_class_regular_unaffected_by_request_backlog () =
  let q = Tva.Qdiscs.make ~params:Tva.Params.default ~bandwidth_bps:10e6 () in
  for _ = 1 to 50 do
    let p = mk_packet ~bytes:250 () in
    p.Wire.Packet.shim <- Some (tva_shim `Request);
    ignore (q.Qdisc.enqueue ~now:0. p)
  done;
  let reg = mk_packet () in
  reg.Wire.Packet.shim <- Some (tva_shim `Regular);
  ignore (q.Qdisc.enqueue ~now:0. reg);
  (* Drain: the regular packet must appear as soon as the request
     limiter's initial token burst (~16 small requests) is spent, long
     before the 50-request backlog clears on rate. *)
  let found_at = ref None in
  for i = 1 to 25 do
    match q.Qdisc.dequeue ~now:0. with
    | Some p ->
        if !found_at = None && Tri_class.classify_by_shim p = Tri_class.Regular then
          found_at := Some i
    | None -> ()
  done;
  match !found_at with
  | Some i -> Alcotest.(check bool) (Printf.sprintf "served at %d" i) true (i <= 20)
  | None -> Alcotest.fail "regular never served"

(* --- SFQ ----------------------------------------------------------------------- *)

let sfq_collisions_share_fate () =
  let buckets = 8 and seed = 3 in
  (* Find two distinct keys that collide. *)
  let k1 = 1 in
  let target = Sfq.hash ~seed ~buckets k1 in
  let k2 =
    let rec find k = if k <> k1 && Sfq.hash ~seed ~buckets k = target then k else find (k + 1) in
    find 2
  in
  let q =
    Sfq.create ~queue_capacity_bytes:2000 ~seed ~buckets
      ~flow_key:(fun p -> Wire.Addr.to_int p.Wire.Packet.src)
      ()
  in
  ignore (q.Qdisc.enqueue ~now:0. (mk_packet ~src:k1 ()));
  ignore (q.Qdisc.enqueue ~now:0. (mk_packet ~src:k1 ()));
  (* The colliding flow shares the same (full) bucket and is dropped — the
     deliberate-collision crowding the paper warns about (Sec. 3.9). *)
  Alcotest.(check bool) "collision crowded out" false (q.Qdisc.enqueue ~now:0. (mk_packet ~src:k2 ()))

let sfq_hash_stable () =
  Alcotest.(check int) "deterministic" (Sfq.hash ~seed:7 ~buckets:16 123)
    (Sfq.hash ~seed:7 ~buckets:16 123)

let sfq_hash_in_range =
  QCheck.Test.make ~name:"sfq: hash lands in a bucket" ~count:500
    QCheck.(pair int (int_range 1 64))
    (fun (key, buckets) ->
      let h = Sfq.hash ~seed:1 ~buckets key in
      h >= 0 && h < buckets)

let suite =
  [
    Alcotest.test_case "droptail fifo" `Quick droptail_fifo_order;
    Alcotest.test_case "droptail bytes" `Quick droptail_byte_capacity;
    Alcotest.test_case "droptail packets" `Quick droptail_packet_capacity;
    Alcotest.test_case "droptail counts" `Quick droptail_counts;
    Alcotest.test_case "droptail idle" `Quick droptail_empty_next_ready;
    Alcotest.test_case "drr equal split" `Quick drr_round_robins_equally;
    Alcotest.test_case "drr byte fairness" `Quick drr_byte_fairness_with_unequal_sizes;
    QCheck_alcotest.to_alcotest drr_starvation_free;
    Alcotest.test_case "drr class capacity" `Quick drr_respects_per_class_capacity;
    Alcotest.test_case "drr overflow class" `Quick drr_overflow_class_shares;
    Alcotest.test_case "drr active queues" `Quick drr_active_queue_count;
    Alcotest.test_case "token bucket burst" `Quick token_bucket_limits_rate;
    Alcotest.test_case "token bucket rate" `Quick token_bucket_long_run_rate;
    Alcotest.test_case "token bucket inner stats" `Quick token_bucket_passes_stats_through;
    Alcotest.test_case "priority order" `Quick priority_serves_high_first;
    Alcotest.test_case "priority clamp" `Quick priority_clamps_class_index;
    Alcotest.test_case "tri-class classifier" `Quick tri_class_classifier;
    Alcotest.test_case "tri-class legacy lowest" `Quick tri_class_legacy_is_lowest_priority;
    Alcotest.test_case "tri-class request limiter" `Quick tri_class_requests_rate_limited;
    Alcotest.test_case "tri-class regular protected" `Quick tri_class_regular_unaffected_by_request_backlog;
    Alcotest.test_case "sfq collisions" `Quick sfq_collisions_share_fate;
    Alcotest.test_case "sfq stable" `Quick sfq_hash_stable;
    QCheck_alcotest.to_alcotest sfq_hash_in_range;
  ]
