test/test_tva.ml: Alcotest Crypto Format Gen Int64 List Net Printf QCheck QCheck_alcotest Rng Sim Tcp Tva Wire
