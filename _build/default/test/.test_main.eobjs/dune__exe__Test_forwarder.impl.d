test/test_forwarder.ml: Alcotest Crypto Float Forwarder List Printf QCheck QCheck_alcotest
