test/test_tcp.ml: Alcotest Float List Printf QCheck QCheck_alcotest Rng Sim Tcp Wire
