test/test_baselines.ml: Alcotest Array Baseline List Net Printf Pushback Qdisc Siff Sim Topology Tva Wire
