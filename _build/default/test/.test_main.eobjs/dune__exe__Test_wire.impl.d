test/test_wire.ml: Alcotest Char Format Gen Int64 List QCheck QCheck_alcotest String Wire
