test/test_crypto.ml: Alcotest Array Bytes Char Crypto Int64 List Printf QCheck QCheck_alcotest String
