test/test_netsim.ml: Alcotest Array Droptail List Net Printf Sim Topology Wire
