test/test_engine.ml: Alcotest Float Gen Int64 List QCheck QCheck_alcotest Rng Sim String
