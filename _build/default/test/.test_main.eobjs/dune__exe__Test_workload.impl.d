test/test_workload.ml: Alcotest Float List Printf Stats Tcp Workload
