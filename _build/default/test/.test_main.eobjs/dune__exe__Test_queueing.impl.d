test/test_queueing.ml: Alcotest Droptail Drr Gen Hashtbl List Option Printf Priority QCheck QCheck_alcotest Qdisc Sfq Token_bucket Tri_class Tva Wire
