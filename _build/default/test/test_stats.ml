(* Statistics helpers: Welford summaries, histograms, rate estimators,
   tables.  These feed every reported number, so they get exact checks. *)

let summary_basics () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5. (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 2. (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9. (Stats.Summary.max s);
  (* Sample variance of this classic data set is 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Stats.Summary.variance s)

let summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 1e-9)) "mean of empty" 0. (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance of empty" 0. (Stats.Summary.variance s)

let summary_single () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 42.;
  Alcotest.(check (float 1e-9)) "mean" 42. (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "variance" 0. (Stats.Summary.variance s)

let summary_merge_equals_combined =
  QCheck.Test.make ~name:"summary: merge == adding everything to one" ~count:100
    QCheck.(pair (list (float_range (-100.) 100.)) (list (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let a = Stats.Summary.create () and b = Stats.Summary.create () in
      List.iter (Stats.Summary.add a) xs;
      List.iter (Stats.Summary.add b) ys;
      let merged = Stats.Summary.merge a b in
      let direct = Stats.Summary.create () in
      List.iter (Stats.Summary.add direct) (xs @ ys);
      let close u v = Float.abs (u -. v) < 1e-6 *. (1. +. Float.abs u +. Float.abs v) in
      Stats.Summary.count merged = Stats.Summary.count direct
      && close (Stats.Summary.mean merged) (Stats.Summary.mean direct)
      && close (Stats.Summary.variance merged) (Stats.Summary.variance direct))

let summary_sum () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.; 2.; 3. ];
  Alcotest.(check (float 1e-9)) "sum" 6. (Stats.Summary.sum s)

(* --- Histogram -------------------------------------------------------- *)

let histogram_binning () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.99; -1.; 10.; 100. ];
  Alcotest.(check int) "count" 7 (Stats.Histogram.count h);
  Alcotest.(check int) "bin0" 1 (Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "bin1" 2 (Stats.Histogram.bin_count h 1);
  Alcotest.(check int) "bin9" 1 (Stats.Histogram.bin_count h 9);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Stats.Histogram.overflow h)

let histogram_bounds () =
  let h = Stats.Histogram.create ~lo:0. ~hi:4. ~bins:4 in
  let lo, hi = Stats.Histogram.bin_bounds h 2 in
  Alcotest.(check (float 1e-9)) "lo" 2. lo;
  Alcotest.(check (float 1e-9)) "hi" 3. hi

let histogram_rejects_bad_args () =
  (match Stats.Histogram.create ~lo:0. ~hi:0. ~bins:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "hi<=lo accepted");
  match Stats.Histogram.create ~lo:0. ~hi:1. ~bins:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bins<=0 accepted"

let histogram_quantiles_ordered =
  QCheck.Test.make ~name:"histogram: quantiles are monotone" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range 0. 100.))
    (fun xs ->
      let h = Stats.Histogram.create ~lo:0. ~hi:100. ~bins:20 in
      List.iter (Stats.Histogram.add h) xs;
      let q25 = Stats.Histogram.quantile h 0.25 in
      let q50 = Stats.Histogram.quantile h 0.5 in
      let q75 = Stats.Histogram.quantile h 0.75 in
      q25 <= q50 +. 1e-9 && q50 <= q75 +. 1e-9)

(* --- Timeseries ------------------------------------------------------- *)

let timeseries_roundtrip () =
  let ts = Stats.Timeseries.create ~name:"t" () in
  Stats.Timeseries.add ts ~time:1. 10.;
  Stats.Timeseries.add ts ~time:2. 20.;
  Stats.Timeseries.add ts ~time:3. 30.;
  Alcotest.(check int) "length" 3 (Stats.Timeseries.length ts);
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "points" [ (1., 10.); (2., 20.); (3., 30.) ]
    (Array.to_list (Stats.Timeseries.points ts));
  Alcotest.(check (list (float 1e-9))) "window" [ 20. ] (Stats.Timeseries.values_in ts ~lo:1.5 ~hi:2.5);
  Alcotest.(check (float 1e-9)) "max" 30. (Stats.Timeseries.max_value ts)

let timeseries_csv () =
  let ts = Stats.Timeseries.create () in
  Stats.Timeseries.add ts ~time:1. 2.;
  let csv = Stats.Timeseries.to_csv ts in
  Alcotest.(check bool) "header" true (String.length csv > 10 && String.sub csv 0 10 = "time,value")

(* --- Rate estimators -------------------------------------------------- *)

let ewma_tracks_constant_rate () =
  let e = Stats.Rate.Ewma.create ~tau:1.0 in
  (* 1000 bytes every 10 ms = 100 KB/s, driven for 5 time constants. *)
  for i = 1 to 500 do
    Stats.Rate.Ewma.observe e ~now:(float_of_int i *. 0.01) ~bytes:1000
  done;
  let r = Stats.Rate.Ewma.rate e ~now:5.0 in
  Alcotest.(check bool) "within 10%" true (Float.abs (r -. 100_000.) < 10_000.)

let ewma_decays () =
  let e = Stats.Rate.Ewma.create ~tau:1.0 in
  for i = 1 to 100 do
    Stats.Rate.Ewma.observe e ~now:(float_of_int i *. 0.01) ~bytes:1000
  done;
  let before = Stats.Rate.Ewma.rate e ~now:1.0 in
  let after = Stats.Rate.Ewma.rate e ~now:4.0 in
  Alcotest.(check bool) "decayed" true (after < before /. 10.)

let window_rate () =
  let w = Stats.Rate.Window.create ~width:1.0 in
  Stats.Rate.Window.observe w ~now:0.2 ~bytes:500;
  Stats.Rate.Window.observe w ~now:0.7 ~bytes:500;
  (* The completed window [0,1) carried 1000 bytes. *)
  Alcotest.(check (float 1e-9)) "rate" 1000. (Stats.Rate.Window.rate w ~now:1.5);
  (* Two windows later with no traffic, the rate reads zero. *)
  Alcotest.(check (float 1e-9)) "stale" 0. (Stats.Rate.Window.rate w ~now:3.5)

(* --- Table ------------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let table_renders () =
  let t = Stats.Table.create ~columns:[ "a"; "b" ] in
  Stats.Table.add_row t [ "1"; "hello" ];
  Stats.Table.add_rowf t "%d\t%s" 2 "world";
  let rendered = Stats.Table.render t in
  Alcotest.(check bool) "contains hello" true (contains rendered "hello");
  Alcotest.(check bool) "contains world" true (contains rendered "world")

let table_csv_quotes () =
  let t = Stats.Table.create ~columns:[ "x" ] in
  Stats.Table.add_row t [ "with,comma" ];
  let csv = Stats.Table.to_csv t in
  Alcotest.(check string) "quoted" "x\n\"with,comma\"\n" csv

let table_rejects_ragged_rows () =
  let t = Stats.Table.create ~columns:[ "a"; "b" ] in
  match Stats.Table.add_row t [ "only one" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "ragged row accepted"

let table_row_order () =
  let t = Stats.Table.create ~columns:[ "x" ] in
  Stats.Table.add_row t [ "first" ];
  Stats.Table.add_row t [ "second" ];
  Alcotest.(check (list (list string))) "order" [ [ "first" ]; [ "second" ] ] (Stats.Table.rows t)

let suite =
  [
    Alcotest.test_case "summary basics" `Quick summary_basics;
    Alcotest.test_case "summary empty" `Quick summary_empty;
    Alcotest.test_case "summary single" `Quick summary_single;
    QCheck_alcotest.to_alcotest summary_merge_equals_combined;
    Alcotest.test_case "summary sum" `Quick summary_sum;
    Alcotest.test_case "histogram binning" `Quick histogram_binning;
    Alcotest.test_case "histogram bounds" `Quick histogram_bounds;
    Alcotest.test_case "histogram bad args" `Quick histogram_rejects_bad_args;
    QCheck_alcotest.to_alcotest histogram_quantiles_ordered;
    Alcotest.test_case "timeseries roundtrip" `Quick timeseries_roundtrip;
    Alcotest.test_case "timeseries csv" `Quick timeseries_csv;
    Alcotest.test_case "ewma constant rate" `Quick ewma_tracks_constant_rate;
    Alcotest.test_case "ewma decay" `Quick ewma_decays;
    Alcotest.test_case "window rate" `Quick window_rate;
    Alcotest.test_case "table render" `Quick table_renders;
    Alcotest.test_case "table csv quoting" `Quick table_csv_quotes;
    Alcotest.test_case "table ragged" `Quick table_rejects_ragged_rows;
    Alcotest.test_case "table order" `Quick table_row_order;
  ]
